// Brute-force flow oracle: on tiny graphs (<= 8 nodes) the full set of
// L-hop message flows is enumerated by direct nested iteration over layer
// edges and compared — as exact multisets of layer-edge paths — against
// src/flow's DFS enumeration and DP counts, for L in {2, 3}. Flow-to-edge
// score translation (paper Eq. 3) is re-derived by brute-force summation,
// and Revelio's §VI prefilter is checked against a finite-difference
// saliency oracle: it must never drop a flow that brute force says is top-k.
// Every failure report includes the reproducing case seed.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/revelio.h"
#include "explain/explainer.h"
#include "flow/flow_scores.h"
#include "flow/message_flow.h"
#include "gnn/layer_edges.h"
#include "gnn/model.h"
#include "nn/loss.h"
#include "prop/prop_util.h"
#include "tensor/ops.h"
#include "util/proptest.h"

namespace revelio {
namespace {

using flow::FlowSet;
using gnn::LayerEdgeSet;
using proptest::GraphSpec;
using tensor::Tensor;

// --- Brute-force enumeration ------------------------------------------------

void ExtendWalk(const LayerEdgeSet& edges, int num_layers, std::vector<int>* path,
                std::vector<std::vector<int>>* out) {
  if (static_cast<int>(path->size()) == num_layers) {
    out->push_back(*path);
    return;
  }
  for (int e = 0; e < edges.num_layer_edges(); ++e) {
    if (!path->empty() && edges.src[e] != edges.dst[path->back()]) continue;
    path->push_back(e);
    ExtendWalk(edges, num_layers, path, out);
    path->pop_back();
  }
}

// All layer-edge paths of length `num_layers` (optionally ending at `target`).
std::vector<std::vector<int>> BruteForceFlows(const LayerEdgeSet& edges, int num_layers,
                                              int target /* -1 = all */) {
  std::vector<std::vector<int>> all;
  std::vector<int> path;
  ExtendWalk(edges, num_layers, &path, &all);
  if (target < 0) return all;
  std::vector<std::vector<int>> to_target;
  for (auto& p : all) {
    if (edges.dst[p.back()] == target) to_target.push_back(std::move(p));
  }
  return to_target;
}

std::vector<std::vector<int>> PathsOf(const FlowSet& flows) {
  std::vector<std::vector<int>> paths(flows.num_flows());
  for (int k = 0; k < flows.num_flows(); ++k) {
    paths[k].resize(flows.num_layers());
    for (int l = 0; l < flows.num_layers(); ++l) paths[k][l] = flows.EdgeAt(l, k);
  }
  return paths;
}

std::string ComparePathSets(std::vector<std::vector<int>> got,
                            std::vector<std::vector<int>> want, const std::string& what) {
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  if (got == want) return "";
  std::ostringstream out;
  out << what << ": enumeration produced " << got.size() << " flows, brute force "
      << want.size();
  return out.str();
}

TEST(FlowOracleTest, EnumerationAndCountsMatchBruteForce) {
  // 120 graphs per L covers both task types (to-target for every node, plus
  // EnumerateAllFlows) on each graph: >= 200 distinct instances in total.
  for (const int num_layers : {2, 3}) {
    const util::CheckResult result = util::ForAll<GraphSpec>(
        "flow-oracle:L" + std::to_string(num_layers), proptest::GraphDomain(0, 8),
        [num_layers](const GraphSpec& spec) -> std::string {
          const graph::Graph g = proptest::MakeGraph(spec);
          const LayerEdgeSet edges = gnn::BuildLayerEdges(g);

          // Whole-graph enumeration (graph-classification path).
          const std::vector<std::vector<int>> brute_all =
              BruteForceFlows(edges, num_layers, -1);
          const FlowSet all = flow::EnumerateAllFlows(edges, num_layers);
          std::string failure = ComparePathSets(PathsOf(all), brute_all, "all flows");
          if (!failure.empty()) return failure;
          if (flow::CountAllFlows(edges, num_layers) !=
              static_cast<int64_t>(brute_all.size())) {
            return "CountAllFlows disagrees with brute force";
          }

          // Per-target enumeration (node-classification path), every node.
          for (int target = 0; target < g.num_nodes(); ++target) {
            const std::vector<std::vector<int>> brute_target =
                BruteForceFlows(edges, num_layers, target);
            const FlowSet to_target = flow::EnumerateFlowsToTarget(edges, target, num_layers);
            failure = ComparePathSets(PathsOf(to_target), brute_target,
                                      "flows to node " + std::to_string(target));
            if (!failure.empty()) return failure;
            if (flow::CountFlowsToTarget(edges, target, num_layers) !=
                static_cast<int64_t>(brute_target.size())) {
              return "CountFlowsToTarget disagrees with brute force at node " +
                     std::to_string(target);
            }
          }
          return "";
        },
        util::DefaultPropConfig(120));
    EXPECT_TRUE(result.ok) << result.report;
  }
}

TEST(FlowOracleTest, ScoreTranslationMatchesBruteForceSums) {
  const util::CheckResult result = util::ForAll<GraphSpec>(
      "flow-oracle:score-translation", proptest::GraphDomain(1, 8, /*allow_empty=*/false),
      [](const GraphSpec& spec) -> std::string {
        const graph::Graph g = proptest::MakeGraph(spec);
        const LayerEdgeSet edges = gnn::BuildLayerEdges(g);
        const int num_layers = 2;
        const FlowSet flows = flow::EnumerateAllFlows(edges, num_layers);
        util::Rng rng(spec.num_nodes * 1315423911ULL + spec.edges.size());
        std::vector<double> scores(flows.num_flows());
        for (auto& s : scores) s = rng.Uniform(-1.0, 1.0);

        // Eq. 3: layer_edge_score[l][e] = sum of scores of flows through (l,e).
        const std::vector<std::vector<double>> got =
            flow::FlowScoresToLayerEdgeScores(flows, scores);
        for (int l = 0; l < num_layers; ++l) {
          for (int e = 0; e < edges.num_layer_edges(); ++e) {
            double want = 0.0;
            for (int k = 0; k < flows.num_flows(); ++k) {
              if (flows.EdgeAt(l, k) == e) want += scores[k];
            }
            if (std::fabs(got[l][e] - want) > 1e-9) {
              return "layer edge score mismatch at layer " + std::to_string(l) + " edge " +
                     std::to_string(e);
            }
          }
        }

        // Base-edge collapse: mean over layers where the edge carries a flow.
        const std::vector<double> edge_scores =
            flow::LayerEdgeScoresToEdgeScores(flows, edges, got);
        for (int e = 0; e < edges.num_base_edges; ++e) {
          double sum = 0.0;
          int layers_carrying = 0;
          for (int l = 0; l < num_layers; ++l) {
            bool carries = false;
            for (int k = 0; k < flows.num_flows(); ++k) {
              if (flows.EdgeAt(l, k) == e) carries = true;
            }
            if (carries) {
              sum += got[l][e];
              ++layers_carrying;
            }
          }
          const double want = layers_carrying > 0 ? sum / layers_carrying : 0.0;
          if (std::fabs(edge_scores[e] - want) > 1e-9) {
            return "base edge score mismatch at edge " + std::to_string(e);
          }
        }
        return "";
      },
      util::DefaultPropConfig(100));
  EXPECT_TRUE(result.ok) << result.report;
}

// --- Prefilter vs finite-difference saliency oracle --------------------------

// sigmoid(sum tanh(M_k) over flows through (l,e)) computed outside autograd,
// as constant mask tensors (layer weights are 0, so exp(w_l) = 1).
std::vector<Tensor> MasksFromFlowMaskValues(const FlowSet& flows,
                                            const std::vector<double>& m) {
  std::vector<Tensor> masks;
  for (int l = 0; l < flows.num_layers(); ++l) {
    std::vector<double> acc(flows.num_layer_edges(), 0.0);
    for (int k = 0; k < flows.num_flows(); ++k) acc[flows.EdgeAt(l, k)] += std::tanh(m[k]);
    std::vector<float> mask(flows.num_layer_edges());
    for (size_t e = 0; e < mask.size(); ++e) {
      mask[e] = static_cast<float>(1.0 / (1.0 + std::exp(-acc[e])));
    }
    masks.push_back(Tensor::FromData(flows.num_layer_edges(), 1, std::move(mask)));
  }
  return masks;
}

double ObjectiveValue(const gnn::GnnModel& model, const graph::Graph& g,
                      const LayerEdgeSet& edges, const Tensor& features,
                      const std::vector<Tensor>& masks, int row, int cls) {
  const Tensor logits = model.Run(g, edges, features, masks).logits;
  return nn::FactualObjective(logits, row, cls).Value();
}

// Replicates InitialFlowSaliency through public APIs: one autograd pass at
// M = 0 (same op sequence, so bitwise-identical to the explainer's pass).
std::vector<double> AutogradSaliency(const gnn::GnnModel& model, const graph::Graph& g,
                                     const LayerEdgeSet& edges, const FlowSet& flows,
                                     const Tensor& features, int row, int cls) {
  Tensor flow_params = Tensor::Zeros(flows.num_flows(), 1).WithRequiresGrad();
  Tensor omega = tensor::Tanh(flow_params);
  Tensor scale = tensor::Exp(Tensor::Zeros(model.num_layers(), 1));
  std::vector<Tensor> masks;
  for (int l = 0; l < flows.num_layers(); ++l) {
    Tensor acc = tensor::ScatterAddRows(omega, flows.EdgesAtLayer(l), flows.num_layer_edges());
    acc = tensor::ScaleByScalarTensor(acc, tensor::Select(scale, l, 0));
    masks.push_back(tensor::Sigmoid(acc));
  }
  const Tensor logits = model.Run(g, edges, features, masks).logits;
  nn::FactualObjective(logits, row, cls).Backward();
  std::vector<double> saliency(flows.num_flows());
  for (int k = 0; k < flows.num_flows(); ++k) {
    saliency[k] = std::fabs(flow_params.GradAt(k, 0));
  }
  return saliency;
}

TEST(FlowOracleTest, PrefilterNeverDropsTopKFlow) {
  int instances_checked = 0;
  for (const int num_layers : {2, 3}) {
    const util::CheckResult result = util::ForAll<GraphSpec>(
        "flow-oracle:prefilter:L" + std::to_string(num_layers),
        proptest::GraphDomain(2, 8, /*allow_empty=*/false),
        [num_layers, &instances_checked](const GraphSpec& spec) -> std::string {
          const graph::Graph g = proptest::MakeGraph(spec);
          const LayerEdgeSet edges = gnn::BuildLayerEdges(g);
          util::Rng rng(spec.num_nodes * 2654435761ULL + spec.edges.size() * 97ULL +
                        num_layers);
          const int target = rng.UniformInt(g.num_nodes());
          const int64_t count = flow::CountFlowsToTarget(edges, target, num_layers);
          if (count < 2 || count > 400) return "";  // prefilter needs 1 <= k < |F|

          gnn::GnnConfig config;
          config.arch = gnn::GnnArch::kGcn;
          config.task = gnn::TaskType::kNodeClassification;
          config.input_dim = 4;
          config.hidden_dim = 6;
          config.num_classes = 2;
          config.num_layers = num_layers;
          config.seed = rng.NextUint64();
          const gnn::GnnModel model(config);
          Tensor features =
              Tensor::Uniform(g.num_nodes(), config.input_dim, -1.0f, 1.0f, &rng);

          const FlowSet flows = flow::EnumerateFlowsToTarget(edges, target, num_layers);
          const int num_flows = flows.num_flows();
          const int top_k = 1 + rng.UniformInt(std::min(3, num_flows - 1));
          const int cls = rng.UniformInt(config.num_classes);

          // (a) Exact: the explainer's kept set equals the top-k of an
          // independently recomputed autograd saliency.
          const std::vector<double> saliency =
              AutogradSaliency(model, g, edges, flows, features, target, cls);
          const std::vector<int> want_kept = flow::TopKFlows(saliency, top_k);

          core::RevelioOptions options;
          options.epochs = 0;  // only the prefilter runs; kept set is result.flows
          options.prefilter_top_k = top_k;
          core::RevelioExplainer explainer(options);
          explain::ExplanationTask task;
          task.model = &model;
          task.graph = &g;
          task.features = features;
          task.target_node = target;
          task.target_class = cls;
          const core::RevelioExplainer::FlowExplanation result =
              explainer.ExplainFlows(task, explain::Objective::kFactual);

          std::map<std::vector<int>, int> full_index;
          const std::vector<std::vector<int>> full_paths = PathsOf(flows);
          for (int k = 0; k < num_flows; ++k) full_index[full_paths[k]] = k;
          std::set<int> got_kept;
          for (const std::vector<int>& path : PathsOf(result.flows)) {
            auto it = full_index.find(path);
            if (it == full_index.end()) return "prefilter kept a flow not in the full set";
            got_kept.insert(it->second);
          }
          if (got_kept != std::set<int>(want_kept.begin(), want_kept.end())) {
            return "prefilter kept set != top-" + std::to_string(top_k) +
                   " of recomputed saliency (|F|=" + std::to_string(num_flows) + ")";
          }

          // (b) Oracle: autograd saliency matches central finite differences
          // of the objective w.r.t. each flow mask at M = 0, so the kept set
          // really is the brute-force top-k (up to FD tolerance).
          //
          // ReLU makes the objective piecewise-smooth: when a pre-activation
          // sits within the FD stencil of a kink, central differences report
          // an averaged slope that is NOT the derivative, while autograd
          // correctly reports the one-sided slope at the point itself. So the
          // check uses a small step, and on disagreement accepts iff the FD
          // error shrinks as h does (i.e. FD converges TO autograd, which is
          // exactly the behavior near a kink and the opposite of a gradient
          // bug, where the error would plateau at the true discrepancy).
          auto fd_at = [&](int k, double h) {
            std::vector<double> m(num_flows, 0.0);
            m[k] = h;
            const double plus = ObjectiveValue(model, g, edges, features,
                                               MasksFromFlowMaskValues(flows, m), target, cls);
            m[k] = -h;
            const double minus = ObjectiveValue(model, g, edges, features,
                                                MasksFromFlowMaskValues(flows, m), target, cls);
            return std::fabs((plus - minus) / (2.0 * h));
          };
          double min_kept_fd = 1e300;
          std::vector<double> fd(num_flows);
          for (int k = 0; k < num_flows; ++k) {
            fd[k] = fd_at(k, 3e-4);  // small enough to dodge most kinks, large
                                     // enough to stay above float32 loss noise
            const double err = std::fabs(fd[k] - saliency[k]);
            if (err > 2e-3 + 0.05 * std::max(fd[k], saliency[k])) {
              const double err_mid = std::fabs(fd_at(k, 1e-3) - saliency[k]);
              const double err_coarse = std::fabs(fd_at(k, 3e-3) - saliency[k]);
              const bool converging_to_autograd =
                  err < 0.6 * err_mid && err_mid < err_coarse;
              if (!converging_to_autograd) {
                return "autograd saliency diverges from FD at flow " + std::to_string(k) +
                       ": autograd " + std::to_string(saliency[k]) + " vs FD " +
                       std::to_string(fd[k]) + " (errors at h=3e-3/1e-3/3e-4: " +
                       std::to_string(err_coarse) + "/" + std::to_string(err_mid) + "/" +
                       std::to_string(err) + ")";
              }
            }
          }
          for (const int k : want_kept) min_kept_fd = std::min(min_kept_fd, fd[k]);
          for (int k = 0; k < num_flows; ++k) {
            if (got_kept.count(k)) continue;
            if (fd[k] > min_kept_fd + 2e-3 + 0.05 * fd[k]) {
              return "prefilter dropped flow " + std::to_string(k) +
                     " whose FD saliency " + std::to_string(fd[k]) +
                     " exceeds the kept minimum " + std::to_string(min_kept_fd);
            }
          }
          ++instances_checked;
          return "";
        },
        util::DefaultPropConfig(60));
    EXPECT_TRUE(result.ok) << result.report;
  }
  // Keep the suite honest: enough generated graphs must actually reach the
  // oracle (not get skipped by the flow-count guard). Replays with
  // REVELIO_PROP_CASES=1 naturally check fewer.
  if (util::DefaultPropConfig(60).num_cases == 60) {
    EXPECT_GE(instances_checked, 40);
  }
}

}  // namespace
}  // namespace revelio
