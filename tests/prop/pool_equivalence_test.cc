// Differential property suite for the pooled tensor allocator: every
// registered op case (tests/prop/prop_util.h) must produce bitwise-identical
// forward values AND input gradients with the pool enabled and disabled,
// across thread counts {1, 2, 7, 16}. The pooled side runs each case twice
// and compares the second run, so the outputs really come from recycled
// (dirty) free-list buffers rather than fresh zeroed storage. A second pass
// repeats the sweep under REVELIO_POISON_POOL semantics — recycled buffers
// arrive NaN-filled, so any kernel that violates the full-overwrite contract
// of NewNodeUninit poisons its results and fails the bitwise check.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "prop/prop_util.h"
#include "tensor/pool.h"
#include "util/parallel.h"

namespace revelio {
namespace {

constexpr int kThreadCounts[] = {1, 2, 7, 16};
constexpr uint64_t kCaseSeed = 0x9001aabbULL;

class PoolEquivalenceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::SetNumThreads(1);
    tensor::SetPoolEnabled(true);
    tensor::SetPoolPoison(false);
  }
};

class PoolModeGuard {
 public:
  explicit PoolModeGuard(bool enabled) : saved_(tensor::PoolEnabled()) {
    tensor::SetPoolEnabled(enabled);
  }
  ~PoolModeGuard() { tensor::SetPoolEnabled(saved_); }

 private:
  bool saved_;
};

bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

void CheckAllOpCases(bool poison) {
  const std::vector<proptest::OpCase> cases =
      proptest::MakeOpCases(kCaseSeed, /*include_large=*/true);
  ASSERT_FALSE(cases.empty());
  for (size_t i = 0; i < cases.size(); ++i) {
    const proptest::OpCase& c = cases[i];
    const uint64_t value_seed = kCaseSeed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    for (const int threads : kThreadCounts) {
      util::SetNumThreads(threads);
      std::vector<float> unpooled;
      {
        PoolModeGuard guard(false);
        unpooled = proptest::RunOpCaseBitstream(c, value_seed);
      }
      std::vector<float> pooled;
      {
        PoolModeGuard guard(true);
        tensor::SetPoolPoison(poison);
        // First run parks this case's buffers; the compared second run is
        // served from the (dirty or poisoned) free lists.
        (void)proptest::RunOpCaseBitstream(c, value_seed);
        pooled = proptest::RunOpCaseBitstream(c, value_seed);
        tensor::SetPoolPoison(false);
      }
      EXPECT_TRUE(BitwiseEqual(pooled, unpooled))
          << c.op << " (" << c.variant << ") diverges pooled vs unpooled at threads=" << threads
          << (poison ? " with poisoned recycled buffers" : "");
    }
  }
}

TEST_F(PoolEquivalenceTest, EveryOpCaseBitwiseIdenticalPooledVsUnpooled) {
  CheckAllOpCases(/*poison=*/false);
}

// NaN-poisoned recycled buffers: a kernel that reads any part of an
// "uninitialized" output before writing it propagates NaN into the stream
// and the bitwise comparison above reports exactly which op broke the
// full-overwrite contract.
TEST_F(PoolEquivalenceTest, FullOverwriteContractHoldsUnderPoisoning) {
  CheckAllOpCases(/*poison=*/true);
}

}  // namespace
}  // namespace revelio
