// Audit-observation equivalence: the per-explanation audit hooks (loss-curve
// sampling, entropy computation, top-k extraction, phase timing) are
// read-only with respect to the numerics. For sequential Explain, fused
// mega-batched ExplainBatch, and the flight recorder on top, every flow
// score, edge score, and top-k ranking must be BITWISE-equal with auditing
// on vs off — the same contract the pool/SpMM/mega-batch suites pin for
// their layers.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/revelio.h"
#include "explain/explainer.h"
#include "explain/gnnexplainer.h"
#include "flow/flow_scores.h"
#include "gnn/model.h"
#include "graph/graph.h"
#include "obs/audit.h"
#include "obs/recorder.h"
#include "prop/prop_util.h"
#include "util/parallel.h"
#include "util/proptest.h"
#include "util/rng.h"

namespace revelio::proptest {
namespace {

using tensor::Tensor;

constexpr uint64_t kSeed = 20260809;
constexpr int kFeatureDim = 4;

struct TaskData {
  graph::Graph graph;
  Tensor features;
  int target_node = -1;
  int target_class = 0;

  explain::ExplanationTask MakeTask(const gnn::GnnModel* model) const {
    explain::ExplanationTask task;
    task.model = model;
    task.graph = &graph;
    task.features = features;
    task.target_node = target_node;
    task.target_class = target_class;
    return task;
  }
};

TaskData MakeNodeTaskData(uint64_t seed) {
  util::Rng rng(seed);
  TaskData data;
  const int n = 6 + rng.UniformInt(5);
  data.graph = graph::Graph(n);
  for (int v = 0; v < n; ++v) data.graph.AddUndirectedEdge(v, (v + 1) % n);
  for (int i = 0; i < 4; ++i) {
    const int u = rng.UniformInt(n);
    const int v = rng.UniformInt(n);
    if (u != v && !data.graph.HasEdge(u, v)) data.graph.AddEdge(u, v);
  }
  data.features = Tensor::Uniform(n, kFeatureDim, -1.0f, 1.0f, &rng);
  data.target_node = rng.UniformInt(n);
  data.target_class = rng.UniformInt(2);
  return data;
}

gnn::GnnConfig ModelConfig() {
  gnn::GnnConfig config;
  config.arch = gnn::GnnArch::kGcn;
  config.task = gnn::TaskType::kNodeClassification;
  config.input_dim = kFeatureDim;
  config.hidden_dim = 6;
  config.num_classes = 2;
  config.num_layers = 2;
  config.seed = kSeed + 1;
  return config;
}

core::RevelioOptions RevelioTestOptions() {
  core::RevelioOptions options;
  options.epochs = 6;
  options.seed = kSeed + 2;
  return options;
}

// Auditing and the flight recorder both off: the baseline observation state.
void DisableObservation() {
  obs::AuditSink::Global().Close();
  obs::SetFlightEnabled(false);
}

// Auditing on (in-memory) and the flight recorder on: maximum observation.
void EnableObservation() {
  obs::AuditSink::Global().CollectInMemory();
  obs::SetFlightEnabled(true);
}

class AuditEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override { util::SetNumThreads(1); }
  void TearDown() override {
    obs::AuditSink::Global().Close();
    obs::SetFlightEnabled(true);
    obs::FlightRecorder::Global().Clear();
    util::SetNumThreads(1);
  }
};

TEST_F(AuditEquivalenceTest, SequentialExplainBitwiseInvariantToAuditing) {
  gnn::GnnModel model(ModelConfig());
  model.Freeze();
  core::RevelioExplainer explainer(RevelioTestOptions());
  for (int i = 0; i < 6; ++i) {
    const TaskData data = MakeNodeTaskData(kSeed + 10 + i);
    const explain::ExplanationTask task = data.MakeTask(&model);
    for (const auto objective :
         {explain::Objective::kFactual, explain::Objective::kCounterfactual}) {
      DisableObservation();
      const core::RevelioExplainer::FlowExplanation off =
          explainer.ExplainFlows(task, objective);
      EnableObservation();
      const core::RevelioExplainer::FlowExplanation on = explainer.ExplainFlows(task, objective);
      const std::vector<obs::AuditRecord> records = obs::AuditSink::Global().TakeRecords();

      EXPECT_EQ(off.flow_scores, on.flow_scores)
          << "task " << i << ": flow scores changed under auditing";
      EXPECT_EQ(off.edge_scores, on.edge_scores)
          << "task " << i << ": edge scores changed under auditing";
      EXPECT_EQ(flow::TopKFlows(off.flow_scores, 10), flow::TopKFlows(on.flow_scores, 10))
          << "task " << i << ": top-k ranking changed under auditing";
    }
  }
}

TEST_F(AuditEquivalenceTest, MegaBatchedExplainBitwiseInvariantToAuditing) {
  gnn::GnnModel model(ModelConfig());
  model.Freeze();
  std::vector<TaskData> data;
  std::vector<explain::ExplanationTask> tasks;
  for (int i = 0; i < 8; ++i) data.push_back(MakeNodeTaskData(kSeed + 40 + i));
  for (const TaskData& d : data) tasks.push_back(d.MakeTask(&model));
  std::vector<const explain::ExplanationTask*> group;
  for (const auto& task : tasks) group.push_back(&task);

  core::RevelioExplainer explainer(RevelioTestOptions());
  DisableObservation();
  const std::vector<core::RevelioExplainer::FlowExplanation> off =
      explainer.ExplainFlowsBatch(group, explain::Objective::kFactual);
  EnableObservation();
  const std::vector<core::RevelioExplainer::FlowExplanation> on =
      explainer.ExplainFlowsBatch(group, explain::Objective::kFactual);

  ASSERT_EQ(off.size(), on.size());
  for (size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].flow_scores, on[i].flow_scores) << "instance " << i;
    EXPECT_EQ(off[i].edge_scores, on[i].edge_scores) << "instance " << i;
    EXPECT_EQ(flow::TopKFlows(off[i].flow_scores, 10), flow::TopKFlows(on[i].flow_scores, 10))
        << "instance " << i;
  }
  // The flow-level API only fills records when the Explainer wrapper opened a
  // scope; prove the audited configuration is non-vacuous by running the
  // wrapper batch on the same group and expecting one record per instance.
  (void)obs::AuditSink::Global().TakeRecords();
  (void)explainer.ExplainBatch(group, explain::Objective::kFactual);
  const std::vector<obs::AuditRecord> records = obs::AuditSink::Global().TakeRecords();
  EXPECT_EQ(records.size(), group.size());
}

TEST_F(AuditEquivalenceTest, ExplainerWrapperBitwiseInvariantToAuditing) {
  gnn::GnnModel model(ModelConfig());
  model.Freeze();
  explain::GnnExplainerOptions options;
  options.epochs = 6;
  options.seed = kSeed + 3;
  explain::GnnExplainerMethod explainer(options);

  std::vector<TaskData> data;
  std::vector<explain::ExplanationTask> tasks;
  for (int i = 0; i < 5; ++i) data.push_back(MakeNodeTaskData(kSeed + 70 + i));
  for (const TaskData& d : data) tasks.push_back(d.MakeTask(&model));
  std::vector<const explain::ExplanationTask*> group;
  for (const auto& task : tasks) group.push_back(&task);

  // Sequential wrapper.
  DisableObservation();
  std::vector<explain::Explanation> seq_off;
  for (const auto& task : tasks) {
    seq_off.push_back(explainer.Explain(task, explain::Objective::kFactual));
  }
  EnableObservation();
  std::vector<explain::Explanation> seq_on;
  for (const auto& task : tasks) {
    seq_on.push_back(explainer.Explain(task, explain::Objective::kFactual));
  }
  (void)obs::AuditSink::Global().TakeRecords();
  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(seq_off[i].edge_scores, seq_on[i].edge_scores) << "sequential instance " << i;
  }

  // Batch wrapper.
  DisableObservation();
  const std::vector<explain::Explanation> batch_off =
      explainer.ExplainBatch(group, explain::Objective::kFactual);
  EnableObservation();
  const std::vector<explain::Explanation> batch_on =
      explainer.ExplainBatch(group, explain::Objective::kFactual);
  const std::vector<obs::AuditRecord> records = obs::AuditSink::Global().TakeRecords();
  ASSERT_EQ(batch_off.size(), batch_on.size());
  for (size_t i = 0; i < batch_off.size(); ++i) {
    EXPECT_EQ(batch_off[i].edge_scores, batch_on[i].edge_scores) << "batched instance " << i;
  }
  EXPECT_EQ(records.size(), group.size());
}

// Property with shrinking over random graph families: auditing on vs off is
// bitwise-equal for a GNNExplainer pair batch on arbitrary structures.
TEST_F(AuditEquivalenceTest, AuditInvarianceOnRandomGraphs) {
  const util::Domain<GraphSpec> domain = GraphDomain(3, 8, /*allow_empty=*/false);
  const util::CheckResult result = util::ForAll<GraphSpec>(
      "audit_on_off_bitwise_equal", domain,
      [](const GraphSpec& spec) -> std::string {
        const graph::Graph graph = MakeGraph(spec);
        if (graph.num_edges() == 0) return "";  // no mask to learn
        util::Rng rng(kSeed + 100);
        TaskData data;
        data.graph = graph;
        data.features = Tensor::Uniform(graph.num_nodes(), kFeatureDim, -1.0f, 1.0f, &rng);
        data.target_node = rng.UniformInt(graph.num_nodes());
        data.target_class = rng.UniformInt(2);

        gnn::GnnModel model(ModelConfig());
        model.Freeze();
        const explain::ExplanationTask task = data.MakeTask(&model);
        explain::GnnExplainerOptions options;
        options.epochs = 6;
        options.seed = kSeed + 3;
        explain::GnnExplainerMethod explainer(options);

        DisableObservation();
        const explain::Explanation off = explainer.Explain(task, explain::Objective::kFactual);
        EnableObservation();
        const explain::Explanation on = explainer.Explain(task, explain::Objective::kFactual);
        const std::vector<obs::AuditRecord> records = obs::AuditSink::Global().TakeRecords();
        obs::AuditSink::Global().Close();
        if (records.size() != 1) return "audited run emitted no record";
        if (off.edge_scores != on.edge_scores) return "edge scores changed under auditing";
        return "";
      },
      util::DefaultPropConfig(25, kSeed + 101));
  EXPECT_TRUE(result.ok) << result.report;
}

}  // namespace
}  // namespace revelio::proptest
