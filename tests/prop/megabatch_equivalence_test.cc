// Mega-batched explanation equivalence: fusing a group of explainer tasks
// into one block-diagonal mega-graph (explain/batch_runner.h) is a pure
// scheduling change. For every batch size, thread count, and pool setting,
// the per-instance flow scores, edge scores, layer weights, and top-k flow
// rankings must be BITWISE-equal to the sequential per-task loop — the same
// contract the fused-SpMM and pool suites pin for their optimizations.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/revelio.h"
#include "explain/batch_runner.h"
#include "explain/explainer.h"
#include "explain/gnnexplainer.h"
#include "eval/runner.h"
#include "flow/flow_scores.h"
#include "gnn/model.h"
#include "graph/graph.h"
#include "prop/prop_util.h"
#include "tensor/pool.h"
#include "util/parallel.h"
#include "util/proptest.h"
#include "util/rng.h"

namespace revelio::proptest {
namespace {

using tensor::Tensor;

constexpr uint64_t kSeed = 20260808;
constexpr int kFeatureDim = 4;

// Self-owning task storage (ExplanationTask holds pointers).
struct TaskData {
  graph::Graph graph;
  Tensor features;
  int target_node = -1;
  int target_class = 0;

  explain::ExplanationTask MakeTask(const gnn::GnnModel* model) const {
    explain::ExplanationTask task;
    task.model = model;
    task.graph = &graph;
    task.features = features;
    task.target_node = target_node;
    task.target_class = target_class;
    return task;
  }
};

// Ring + random chords: connected, every node has in-edges, so flow
// enumeration to any target is non-empty at any depth.
TaskData MakeNodeTaskData(uint64_t seed) {
  util::Rng rng(seed);
  TaskData data;
  const int n = 6 + rng.UniformInt(5);
  data.graph = graph::Graph(n);
  for (int v = 0; v < n; ++v) data.graph.AddUndirectedEdge(v, (v + 1) % n);
  for (int i = 0; i < 4; ++i) {
    const int u = rng.UniformInt(n);
    const int v = rng.UniformInt(n);
    if (u != v && !data.graph.HasEdge(u, v)) data.graph.AddEdge(u, v);
  }
  data.features = Tensor::Uniform(n, kFeatureDim, -1.0f, 1.0f, &rng);
  data.target_node = rng.UniformInt(n);
  data.target_class = rng.UniformInt(2);
  return data;
}

TaskData MakeGraphTaskData(uint64_t seed) {
  TaskData data = MakeNodeTaskData(seed);
  data.target_node = -1;
  return data;
}

gnn::GnnConfig ModelConfig(gnn::TaskType task_type) {
  gnn::GnnConfig config;
  config.arch = gnn::GnnArch::kGcn;
  config.task = task_type;
  config.input_dim = kFeatureDim;
  config.hidden_dim = 6;
  config.num_classes = 2;
  config.num_layers = 2;
  config.seed = kSeed + 1;
  return config;
}

core::RevelioOptions RevelioTestOptions() {
  core::RevelioOptions options;
  options.epochs = 6;
  options.seed = kSeed + 2;
  return options;
}

explain::GnnExplainerOptions GnnExplainerTestOptions() {
  explain::GnnExplainerOptions options;
  options.epochs = 6;
  options.seed = kSeed + 3;
  return options;
}

void ExpectFlowExplanationsBitwiseEqual(
    const core::RevelioExplainer::FlowExplanation& expected,
    const core::RevelioExplainer::FlowExplanation& actual, const std::string& context) {
  EXPECT_EQ(expected.flow_scores, actual.flow_scores) << context << ": flow scores differ";
  EXPECT_EQ(expected.edge_scores, actual.edge_scores) << context << ": edge scores differ";
  EXPECT_EQ(expected.layer_edge_masks, actual.layer_edge_masks)
      << context << ": layer edge masks differ";
  EXPECT_EQ(expected.layer_weights, actual.layer_weights)
      << context << ": layer weights differ";
  EXPECT_EQ(flow::TopKFlows(expected.flow_scores, 10), flow::TopKFlows(actual.flow_scores, 10))
      << context << ": top-k flow rankings differ";
}

class MegaBatchEquivalenceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::SetNumThreads(1);
    tensor::SetPoolEnabled(true);
    explain::SetMegaBatchEnabled(true);
    explain::SetMegaBatchSize(32);
  }
};

TEST_F(MegaBatchEquivalenceTest, RevelioBatchedEqualsSequentialAcrossBatchSizes) {
  util::SetNumThreads(1);
  gnn::GnnModel model(ModelConfig(gnn::TaskType::kNodeClassification));
  model.Freeze();
  std::vector<TaskData> data;
  std::vector<explain::ExplanationTask> tasks;
  for (int i = 0; i < 32; ++i) data.push_back(MakeNodeTaskData(kSeed + 10 + i));
  for (const TaskData& d : data) tasks.push_back(d.MakeTask(&model));

  core::RevelioExplainer explainer(RevelioTestOptions());
  std::vector<core::RevelioExplainer::FlowExplanation> reference;
  for (const auto& task : tasks) {
    reference.push_back(explainer.ExplainFlows(task, explain::Objective::kFactual));
    ASSERT_FALSE(reference.back().flow_scores.empty());
  }

  for (const int batch_size : {1, 2, 7, 32}) {
    std::vector<const explain::ExplanationTask*> group;
    for (int i = 0; i < batch_size; ++i) group.push_back(&tasks[i]);
    const std::vector<core::RevelioExplainer::FlowExplanation> batched =
        explainer.ExplainFlowsBatch(group, explain::Objective::kFactual);
    ASSERT_EQ(batched.size(), group.size());
    for (int i = 0; i < batch_size; ++i) {
      ExpectFlowExplanationsBitwiseEqual(
          reference[i], batched[i],
          "batch=" + std::to_string(batch_size) + " instance=" + std::to_string(i));
    }
  }
}

TEST_F(MegaBatchEquivalenceTest, RevelioBatchedInvariantToThreadsAndPool) {
  util::SetNumThreads(1);
  tensor::SetPoolEnabled(true);
  gnn::GnnModel model(ModelConfig(gnn::TaskType::kNodeClassification));
  model.Freeze();
  std::vector<TaskData> data;
  std::vector<explain::ExplanationTask> tasks;
  for (int i = 0; i < 7; ++i) data.push_back(MakeNodeTaskData(kSeed + 50 + i));
  for (const TaskData& d : data) tasks.push_back(d.MakeTask(&model));
  std::vector<const explain::ExplanationTask*> group;
  for (const auto& task : tasks) group.push_back(&task);

  core::RevelioExplainer explainer(RevelioTestOptions());
  std::vector<core::RevelioExplainer::FlowExplanation> reference;
  for (const auto& task : tasks) {
    reference.push_back(explainer.ExplainFlows(task, explain::Objective::kFactual));
  }

  for (const int threads : {1, 2, 7, 16}) {
    for (const bool pool_on : {true, false}) {
      util::SetNumThreads(threads);
      tensor::SetPoolEnabled(pool_on);
      const std::vector<core::RevelioExplainer::FlowExplanation> batched =
          explainer.ExplainFlowsBatch(group, explain::Objective::kFactual);
      ASSERT_EQ(batched.size(), group.size());
      for (size_t i = 0; i < batched.size(); ++i) {
        ExpectFlowExplanationsBitwiseEqual(
            reference[i], batched[i],
            "threads=" + std::to_string(threads) + " pool=" + (pool_on ? "on" : "off") +
                " instance=" + std::to_string(i));
      }
    }
  }
}

TEST_F(MegaBatchEquivalenceTest, RevelioCounterfactualAndPrefilterMatch) {
  util::SetNumThreads(1);
  gnn::GnnModel model(ModelConfig(gnn::TaskType::kNodeClassification));
  model.Freeze();
  std::vector<TaskData> data;
  std::vector<explain::ExplanationTask> tasks;
  for (int i = 0; i < 3; ++i) data.push_back(MakeNodeTaskData(kSeed + 90 + i));
  for (const TaskData& d : data) tasks.push_back(d.MakeTask(&model));
  std::vector<const explain::ExplanationTask*> group;
  for (const auto& task : tasks) group.push_back(&task);

  core::RevelioOptions options = RevelioTestOptions();
  for (const int prefilter : {0, 5}) {
    options.prefilter_top_k = prefilter;
    core::RevelioExplainer explainer(options);
    for (const auto objective :
         {explain::Objective::kFactual, explain::Objective::kCounterfactual}) {
      const std::vector<core::RevelioExplainer::FlowExplanation> batched =
          explainer.ExplainFlowsBatch(group, objective);
      ASSERT_EQ(batched.size(), group.size());
      for (size_t i = 0; i < batched.size(); ++i) {
        ExpectFlowExplanationsBitwiseEqual(
            explainer.ExplainFlows(tasks[i], objective), batched[i],
            std::string("objective=") + explain::ObjectiveName(objective) +
                " prefilter=" + std::to_string(prefilter) + " instance=" + std::to_string(i));
      }
    }
  }
}

TEST_F(MegaBatchEquivalenceTest, RevelioGraphClassificationMatches) {
  util::SetNumThreads(1);
  gnn::GnnModel model(ModelConfig(gnn::TaskType::kGraphClassification));
  model.Freeze();
  std::vector<TaskData> data;
  std::vector<explain::ExplanationTask> tasks;
  for (int i = 0; i < 4; ++i) data.push_back(MakeGraphTaskData(kSeed + 130 + i));
  for (const TaskData& d : data) tasks.push_back(d.MakeTask(&model));
  std::vector<const explain::ExplanationTask*> group;
  for (const auto& task : tasks) group.push_back(&task);

  core::RevelioExplainer explainer(RevelioTestOptions());
  const std::vector<core::RevelioExplainer::FlowExplanation> batched =
      explainer.ExplainFlowsBatch(group, explain::Objective::kFactual);
  ASSERT_EQ(batched.size(), group.size());
  for (size_t i = 0; i < batched.size(); ++i) {
    ExpectFlowExplanationsBitwiseEqual(
        explainer.ExplainFlows(tasks[i], explain::Objective::kFactual), batched[i],
        "graph-task instance=" + std::to_string(i));
  }
}

TEST_F(MegaBatchEquivalenceTest, GnnExplainerBatchedEqualsSequentialAcrossBatchSizes) {
  util::SetNumThreads(1);
  gnn::GnnModel model(ModelConfig(gnn::TaskType::kNodeClassification));
  model.Freeze();
  std::vector<TaskData> data;
  std::vector<explain::ExplanationTask> tasks;
  for (int i = 0; i < 32; ++i) data.push_back(MakeNodeTaskData(kSeed + 170 + i));
  for (const TaskData& d : data) tasks.push_back(d.MakeTask(&model));

  for (const auto objective :
       {explain::Objective::kFactual, explain::Objective::kCounterfactual}) {
    explain::GnnExplainerMethod explainer(GnnExplainerTestOptions());
    std::vector<explain::Explanation> reference;
    for (const auto& task : tasks) reference.push_back(explainer.Explain(task, objective));

    for (const int batch_size : {1, 2, 7, 32}) {
      std::vector<const explain::ExplanationTask*> group;
      for (int i = 0; i < batch_size; ++i) group.push_back(&tasks[i]);
      const std::vector<explain::Explanation> batched = explainer.ExplainBatch(group, objective);
      ASSERT_EQ(batched.size(), group.size());
      for (int i = 0; i < batch_size; ++i) {
        EXPECT_EQ(reference[i].edge_scores, batched[i].edge_scores)
            << "objective=" << explain::ObjectiveName(objective) << " batch=" << batch_size
            << " instance=" << i;
      }
    }
  }
}

TEST_F(MegaBatchEquivalenceTest, GnnExplainerBatchedInvariantToThreadsAndPool) {
  util::SetNumThreads(1);
  tensor::SetPoolEnabled(true);
  gnn::GnnModel model(ModelConfig(gnn::TaskType::kNodeClassification));
  model.Freeze();
  std::vector<TaskData> data;
  std::vector<explain::ExplanationTask> tasks;
  for (int i = 0; i < 7; ++i) data.push_back(MakeNodeTaskData(kSeed + 210 + i));
  for (const TaskData& d : data) tasks.push_back(d.MakeTask(&model));
  std::vector<const explain::ExplanationTask*> group;
  for (const auto& task : tasks) group.push_back(&task);

  explain::GnnExplainerMethod explainer(GnnExplainerTestOptions());
  std::vector<explain::Explanation> reference;
  for (const auto& task : tasks) {
    reference.push_back(explainer.Explain(task, explain::Objective::kFactual));
  }

  for (const int threads : {1, 2, 7, 16}) {
    for (const bool pool_on : {true, false}) {
      util::SetNumThreads(threads);
      tensor::SetPoolEnabled(pool_on);
      const std::vector<explain::Explanation> batched =
          explainer.ExplainBatch(group, explain::Objective::kFactual);
      ASSERT_EQ(batched.size(), group.size());
      for (size_t i = 0; i < batched.size(); ++i) {
        EXPECT_EQ(reference[i].edge_scores, batched[i].edge_scores)
            << "threads=" << threads << " pool=" << (pool_on ? "on" : "off")
            << " instance=" << i;
      }
    }
  }
}

// ExplainAll's group dispatch: with mega-batching enabled the harness routes
// same-model runs of tasks through ExplainBatch; with it disabled it takes
// the pre-existing per-task path. Both must equal the plain sequential loop.
TEST_F(MegaBatchEquivalenceTest, ExplainAllDispatchMatchesSequentialAndFallback) {
  util::SetNumThreads(1);
  gnn::GnnModel model(ModelConfig(gnn::TaskType::kNodeClassification));
  model.Freeze();
  std::vector<TaskData> data;
  std::vector<explain::ExplanationTask> tasks;
  for (int i = 0; i < 9; ++i) data.push_back(MakeNodeTaskData(kSeed + 250 + i));
  for (const TaskData& d : data) tasks.push_back(d.MakeTask(&model));

  explain::GnnExplainerMethod explainer(GnnExplainerTestOptions());
  std::vector<explain::Explanation> reference;
  for (const auto& task : tasks) {
    reference.push_back(explainer.Explain(task, explain::Objective::kFactual));
  }

  explain::SetMegaBatchEnabled(true);
  explain::SetMegaBatchSize(4);  // forces several groups over the 9 tasks
  const std::vector<explain::Explanation> batched =
      eval::ExplainAll(&explainer, tasks, explain::Objective::kFactual);
  ASSERT_EQ(batched.size(), tasks.size());

  explain::SetMegaBatchEnabled(false);
  const std::vector<explain::Explanation> fallback =
      eval::ExplainAll(&explainer, tasks, explain::Objective::kFactual);
  ASSERT_EQ(fallback.size(), tasks.size());

  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(reference[i].edge_scores, batched[i].edge_scores)
        << "megabatch dispatch diverged at instance " << i;
    EXPECT_EQ(reference[i].edge_scores, fallback[i].edge_scores)
        << "REVELIO_MEGABATCH=0 fallback diverged at instance " << i;
  }
}

// Property with shrinking: over random graph families (star, path, dense,
// disconnected, Erdos-Renyi), a two-instance GNNExplainer mega-batch equals
// the sequential loop bitwise. Edgeless graphs are vacuously skipped (no
// base-edge mask to learn; explainers reject them upstream).
TEST_F(MegaBatchEquivalenceTest, GnnExplainerBatchOfTwoMatchesOnRandomGraphs) {
  util::SetNumThreads(1);
  const util::Domain<GraphSpec> domain = GraphDomain(3, 8, /*allow_empty=*/false);
  const util::CheckResult result = util::ForAll<GraphSpec>(
      "megabatch_pair_equals_sequential", domain,
      [](const GraphSpec& spec) -> std::string {
        const graph::Graph graph = MakeGraph(spec);
        if (graph.num_edges() == 0) return "";  // no mask to learn
        util::Rng rng(kSeed + 300);
        TaskData a;
        a.graph = graph;
        a.features = Tensor::Uniform(graph.num_nodes(), kFeatureDim, -1.0f, 1.0f, &rng);
        a.target_node = rng.UniformInt(graph.num_nodes());
        a.target_class = rng.UniformInt(2);
        TaskData b;
        b.graph = graph;
        b.features = Tensor::Uniform(graph.num_nodes(), kFeatureDim, -1.0f, 1.0f, &rng);
        b.target_node = rng.UniformInt(graph.num_nodes());
        b.target_class = rng.UniformInt(2);

        gnn::GnnModel model(ModelConfig(gnn::TaskType::kNodeClassification));
        model.Freeze();
        const explain::ExplanationTask task_a = a.MakeTask(&model);
        const explain::ExplanationTask task_b = b.MakeTask(&model);

        explain::GnnExplainerMethod explainer(GnnExplainerTestOptions());
        const explain::Explanation seq_a = explainer.Explain(task_a, explain::Objective::kFactual);
        const explain::Explanation seq_b = explainer.Explain(task_b, explain::Objective::kFactual);
        const std::vector<explain::Explanation> batched =
            explainer.ExplainBatch({&task_a, &task_b}, explain::Objective::kFactual);
        if (batched.size() != 2) return "batch returned wrong count";
        if (batched[0].edge_scores != seq_a.edge_scores) {
          return "instance 0 diverged from sequential";
        }
        if (batched[1].edge_scores != seq_b.edge_scores) {
          return "instance 1 diverged from sequential";
        }
        return "";
      },
      util::DefaultPropConfig(25, kSeed + 301));
  EXPECT_TRUE(result.ok) << result.report;
}

}  // namespace
}  // namespace revelio::proptest
