#include "prop/prop_util.h"

#include <cmath>
#include <cstdio>

namespace revelio::proptest {
namespace {

using tensor::Tensor;

constexpr uint64_t kWeightSeedSalt = 0x77e1677e1677e167ULL;

struct Shape {
  int rows;
  int cols;
  bool fd;  // include in the finite-difference suite
};

std::string ShapeTag(int rows, int cols) {
  return std::to_string(rows) + "x" + std::to_string(cols);
}

// Input styles; shapes stay FD-safe for the op they are used with.
enum class Fill { kUniform, kAwayFromZero, kDistinct, kPositive, kNarrow, kLogProb };

Tensor FillLeaf(util::Rng& rng, int rows, int cols, Fill fill) {
  switch (fill) {
    case Fill::kUniform:
      return RandLeaf(rng, rows, cols);
    case Fill::kAwayFromZero:
      return RandAwayFromZero(rng, rows, cols);
    case Fill::kDistinct:
      return RandDistinct(rng, rows, cols);
    case Fill::kPositive:
      return RandLeaf(rng, rows, cols, 0.5f, 3.0f);
    case Fill::kNarrow:
      return RandLeaf(rng, rows, cols, -1.5f, 1.5f);
    case Fill::kLogProb:
      return RandLeaf(rng, rows, cols, -3.0f, -0.1f);
  }
  return Tensor();
}

}  // namespace

std::vector<OpCase> MakeOpCases(uint64_t seed, bool include_large) {
  std::vector<OpCase> cases;
  util::Rng idx_rng(seed);  // draws every fixed index argument, in order

  auto add = [&cases](std::string op, std::string variant, bool fd,
                      std::function<std::vector<Tensor>(util::Rng&)> make_inputs,
                      std::function<Tensor(const std::vector<Tensor>&)> forward) {
    OpCase c;
    c.op = std::move(op);
    c.variant = std::move(variant);
    c.fd_checkable = fd;
    c.make_inputs = std::move(make_inputs);
    c.forward = std::move(forward);
    cases.push_back(std::move(c));
  };

  // Elementwise unary ops: same shape sweep for all of them.
  auto unary = [&](const std::string& op, Fill fill,
                   std::function<Tensor(const Tensor&)> fn) {
    std::vector<Shape> shapes = {{5, 4, true}, {1, 1, true}, {0, 3, true}};
    if (include_large) shapes.push_back({600, 60, false});
    for (const Shape& s : shapes) {
      // Large instances skip FD, so plain uniform values are fine everywhere.
      const Fill f = s.fd ? fill : Fill::kUniform;
      add(op, ShapeTag(s.rows, s.cols), s.fd,
          [s, f](util::Rng& rng) { return std::vector<Tensor>{FillLeaf(rng, s.rows, s.cols, f)}; },
          [fn](const std::vector<Tensor>& in) { return fn(in[0]); });
    }
  };
  unary("Relu", Fill::kAwayFromZero, [](const Tensor& a) { return tensor::Relu(a); });
  unary("LeakyRelu", Fill::kAwayFromZero,
        [](const Tensor& a) { return tensor::LeakyRelu(a, 0.2f); });
  unary("Tanh", Fill::kUniform, [](const Tensor& a) { return tensor::Tanh(a); });
  unary("Sigmoid", Fill::kUniform, [](const Tensor& a) { return tensor::Sigmoid(a); });
  unary("Exp", Fill::kNarrow, [](const Tensor& a) { return tensor::Exp(a); });
  unary("Log", Fill::kPositive, [](const Tensor& a) { return tensor::Log(a); });
  unary("Softplus", Fill::kUniform, [](const Tensor& a) { return tensor::Softplus(a); });
  unary("Neg", Fill::kUniform, [](const Tensor& a) { return tensor::Neg(a); });
  unary("AddScalar", Fill::kUniform, [](const Tensor& a) { return tensor::AddScalar(a, 0.7f); });
  unary("MulScalar", Fill::kUniform, [](const Tensor& a) { return tensor::MulScalar(a, -1.3f); });
  unary("Sum", Fill::kUniform, [](const Tensor& a) { return tensor::Sum(a); });
  unary("RowSoftmax", Fill::kUniform, [](const Tensor& a) { return tensor::RowSoftmax(a); });
  unary("RowLogSoftmax", Fill::kUniform,
        [](const Tensor& a) { return tensor::RowLogSoftmax(a); });

  // Mean CHECK-fails on empty tensors; no 0-row variant.
  {
    std::vector<Shape> shapes = {{5, 4, true}, {1, 1, true}};
    if (include_large) shapes.push_back({600, 60, false});
    for (const Shape& s : shapes) {
      add("Mean", ShapeTag(s.rows, s.cols), s.fd,
          [s](util::Rng& rng) {
            return std::vector<Tensor>{FillLeaf(rng, s.rows, s.cols, Fill::kUniform)};
          },
          [](const std::vector<Tensor>& in) { return tensor::Mean(in[0]); });
    }
  }

  // Elementwise binary ops.
  auto binary = [&](const std::string& op,
                    std::function<Tensor(const Tensor&, const Tensor&)> fn) {
    std::vector<Shape> shapes = {{5, 4, true}, {1, 1, true}, {0, 3, true}};
    if (include_large) shapes.push_back({600, 60, false});
    for (const Shape& s : shapes) {
      add(op, ShapeTag(s.rows, s.cols), s.fd,
          [s](util::Rng& rng) {
            return std::vector<Tensor>{FillLeaf(rng, s.rows, s.cols, Fill::kUniform),
                                       FillLeaf(rng, s.rows, s.cols, Fill::kUniform)};
          },
          [fn](const std::vector<Tensor>& in) { return fn(in[0], in[1]); });
    }
  };
  binary("Add", [](const Tensor& a, const Tensor& b) { return tensor::Add(a, b); });
  binary("Sub", [](const Tensor& a, const Tensor& b) { return tensor::Sub(a, b); });
  binary("Mul", [](const Tensor& a, const Tensor& b) { return tensor::Mul(a, b); });

  // AddRowBroadcast: (N x C) + (1 x C).
  {
    std::vector<Shape> shapes = {{5, 4, true}, {1, 1, true}, {0, 4, true}};
    if (include_large) shapes.push_back({2000, 40, false});
    for (const Shape& s : shapes) {
      add("AddRowBroadcast", ShapeTag(s.rows, s.cols), s.fd,
          [s](util::Rng& rng) {
            return std::vector<Tensor>{FillLeaf(rng, s.rows, s.cols, Fill::kUniform),
                                       FillLeaf(rng, 1, s.cols, Fill::kUniform)};
          },
          [](const std::vector<Tensor>& in) { return tensor::AddRowBroadcast(in[0], in[1]); });
    }
  }

  // ScaleByScalarTensor: (N x C) scaled by a differentiable 1x1.
  {
    std::vector<Shape> shapes = {{5, 4, true}, {1, 1, true}, {0, 3, true}};
    if (include_large) shapes.push_back({600, 60, false});
    for (const Shape& s : shapes) {
      add("ScaleByScalarTensor", ShapeTag(s.rows, s.cols), s.fd,
          [s](util::Rng& rng) {
            return std::vector<Tensor>{FillLeaf(rng, s.rows, s.cols, Fill::kUniform),
                                       FillLeaf(rng, 1, 1, Fill::kUniform)};
          },
          [](const std::vector<Tensor>& in) {
            return tensor::ScaleByScalarTensor(in[0], in[1]);
          });
    }
  }

  // MatMul: (N x K) x (K x M).
  {
    struct MatShape {
      int n, k, m;
      bool fd;
    };
    std::vector<MatShape> shapes = {{5, 3, 4, true}, {1, 1, 1, true}, {0, 3, 4, true}};
    if (include_large) shapes.push_back({256, 64, 48, false});
    for (const MatShape& s : shapes) {
      add("MatMul",
          ShapeTag(s.n, s.k) + "*" + ShapeTag(s.k, s.m), s.fd,
          [s](util::Rng& rng) {
            return std::vector<Tensor>{FillLeaf(rng, s.n, s.k, Fill::kUniform),
                                       FillLeaf(rng, s.k, s.m, Fill::kUniform)};
          },
          [](const std::vector<Tensor>& in) { return tensor::MatMul(in[0], in[1]); });
    }
  }

  // GatherRows.
  {
    struct GatherShape {
      int src_rows, cols, count;
      bool fd;
    };
    std::vector<GatherShape> shapes = {{6, 3, 8, true}, {1, 1, 1, true}, {4, 3, 0, true}};
    if (include_large) shapes.push_back({512, 64, 4000, false});
    for (const GatherShape& s : shapes) {
      std::vector<int> indices(s.count);
      for (auto& i : indices) i = idx_rng.UniformInt(s.src_rows);
      add("GatherRows", ShapeTag(s.src_rows, s.cols) + "/" + std::to_string(s.count), s.fd,
          [s](util::Rng& rng) {
            return std::vector<Tensor>{FillLeaf(rng, s.src_rows, s.cols, Fill::kUniform)};
          },
          [indices](const std::vector<Tensor>& in) {
            return tensor::GatherRows(in[0], indices);
          });
    }
  }

  // ScatterAddRows (with index collisions).
  {
    struct ScatterShape {
      int src_rows, cols, num_rows;
      bool fd;
    };
    std::vector<ScatterShape> shapes = {{6, 3, 4, true}, {1, 1, 2, true}, {0, 3, 3, true}};
    if (include_large) shapes.push_back({4000, 64, 512, false});
    for (const ScatterShape& s : shapes) {
      std::vector<int> indices(s.src_rows);
      for (auto& i : indices) i = idx_rng.UniformInt(s.num_rows);
      add("ScatterAddRows", ShapeTag(s.src_rows, s.cols) + "->" + std::to_string(s.num_rows),
          s.fd,
          [s](util::Rng& rng) {
            return std::vector<Tensor>{FillLeaf(rng, s.src_rows, s.cols, Fill::kUniform)};
          },
          [indices, s](const std::vector<Tensor>& in) {
            return tensor::ScatterAddRows(in[0], indices, s.num_rows);
          });
    }
  }

  // Fused SpMM ops: random CSR patterns (with collisions and zero-degree
  // rows), feature matrix differentiable; the weighted variant also
  // differentiates the per-edge weight vector.
  {
    struct SpmmShape {
      int num_rows, num_cols, num_edges, feat;
      bool fd;
    };
    std::vector<SpmmShape> shapes = {{4, 5, 9, 3, true}, {1, 1, 1, 1, true}, {3, 2, 0, 3, true}};
    if (include_large) shapes.push_back({512, 512, 4000, 64, false});
    auto rand_pattern = [&idx_rng](const SpmmShape& s) {
      std::vector<int> rows(s.num_edges);
      std::vector<int> cols(s.num_edges);
      for (int k = 0; k < s.num_edges; ++k) {
        rows[k] = idx_rng.UniformInt(s.num_rows);
        cols[k] = idx_rng.UniformInt(s.num_cols);
      }
      return tensor::BuildCsrPattern(s.num_rows, s.num_cols, rows, cols);
    };
    for (const SpmmShape& s : shapes) {
      const std::string tag =
          ShapeTag(s.num_rows, s.num_cols) + "/" + std::to_string(s.num_edges);
      {
        tensor::CsrPatternRef pattern = rand_pattern(s);
        add("SpmmCsr", tag, s.fd,
            [s](util::Rng& rng) {
              return std::vector<Tensor>{FillLeaf(rng, s.num_cols, s.feat, Fill::kUniform)};
            },
            [pattern](const std::vector<Tensor>& in) {
              return tensor::SpmmCsr(pattern, in[0]);
            });
      }
      {
        tensor::CsrPatternRef pattern = rand_pattern(s);
        add("SpmmCsrWeighted", tag, s.fd,
            [s](util::Rng& rng) {
              return std::vector<Tensor>{FillLeaf(rng, s.num_edges, 1, Fill::kUniform),
                                         FillLeaf(rng, s.num_cols, s.feat, Fill::kUniform)};
            },
            [pattern](const std::vector<Tensor>& in) {
              return tensor::SpmmCsrWeighted(pattern, in[0], in[1]);
            });
      }
      {
        tensor::CsrPatternRef pattern = rand_pattern(s);
        add("SpmmCsrMean", tag, s.fd,
            [s](util::Rng& rng) {
              return std::vector<Tensor>{FillLeaf(rng, s.num_cols, s.feat, Fill::kUniform)};
            },
            [pattern](const std::vector<Tensor>& in) {
              return tensor::SpmmCsrMean(pattern, in[0]);
            });
      }
    }
  }

  // RowScale: both operands differentiable.
  {
    std::vector<Shape> shapes = {{5, 3, true}, {1, 1, true}, {0, 3, true}};
    if (include_large) shapes.push_back({2000, 40, false});
    for (const Shape& s : shapes) {
      add("RowScale", ShapeTag(s.rows, s.cols), s.fd,
          [s](util::Rng& rng) {
            return std::vector<Tensor>{FillLeaf(rng, s.rows, s.cols, Fill::kUniform),
                                       FillLeaf(rng, s.rows, 1, Fill::kUniform)};
          },
          [](const std::vector<Tensor>& in) { return tensor::RowScale(in[0], in[1]); });
    }
  }

  // ConcatCols.
  {
    struct ConcatShape {
      int rows, a_cols, b_cols;
      bool fd;
    };
    std::vector<ConcatShape> shapes = {{4, 2, 3, true}, {1, 1, 1, true}, {0, 2, 3, true}};
    if (include_large) shapes.push_back({2000, 30, 34, false});
    for (const ConcatShape& s : shapes) {
      add("ConcatCols", ShapeTag(s.rows, s.a_cols) + "|" + ShapeTag(s.rows, s.b_cols), s.fd,
          [s](util::Rng& rng) {
            return std::vector<Tensor>{FillLeaf(rng, s.rows, s.a_cols, Fill::kUniform),
                                       FillLeaf(rng, s.rows, s.b_cols, Fill::kUniform)};
          },
          [](const std::vector<Tensor>& in) { return tensor::ConcatCols(in[0], in[1]); });
    }
  }

  // Segment ops. Segment ids deliberately include (possibly) empty segments.
  {
    struct SegShape {
      int count, cols, num_segments;
      bool fd;
    };
    // SegmentSoftmax requires (M x 1) values.
    std::vector<SegShape> softmax_shapes = {{8, 1, 3, true}, {1, 1, 1, true}, {0, 1, 2, true}};
    if (include_large) softmax_shapes.push_back({20000, 1, 128, false});
    for (const SegShape& s : softmax_shapes) {
      std::vector<int> ids = RandSegments(idx_rng, s.count, s.num_segments);
      add("SegmentSoftmax", std::to_string(s.count) + "/" + std::to_string(s.num_segments),
          s.fd,
          [s](util::Rng& rng) {
            return std::vector<Tensor>{FillLeaf(rng, s.count, 1, Fill::kUniform)};
          },
          [ids, s](const std::vector<Tensor>& in) {
            return tensor::SegmentSoftmax(in[0], ids, s.num_segments);
          });
    }

    std::vector<SegShape> mean_shapes = {{7, 3, 4, true}, {1, 1, 1, true}, {0, 3, 2, true}};
    if (include_large) mean_shapes.push_back({4000, 32, 64, false});
    for (const SegShape& s : mean_shapes) {
      std::vector<int> ids = RandSegments(idx_rng, s.count, s.num_segments);
      add("SegmentMeanRows", std::to_string(s.count) + "/" + std::to_string(s.num_segments),
          s.fd,
          [s](util::Rng& rng) {
            return std::vector<Tensor>{FillLeaf(rng, s.count, s.cols, Fill::kUniform)};
          },
          [ids, s](const std::vector<Tensor>& in) {
            return tensor::SegmentMeanRows(in[0], ids, s.num_segments);
          });
    }

    std::vector<SegShape> sum_shapes = {{7, 3, 4, true}, {1, 1, 1, true}, {0, 3, 2, true}};
    if (include_large) sum_shapes.push_back({4000, 32, 64, false});
    for (const SegShape& s : sum_shapes) {
      std::vector<int> ids = RandSegments(idx_rng, s.count, s.num_segments);
      add("SegmentSumRows", std::to_string(s.count) + "/" + std::to_string(s.num_segments),
          s.fd,
          [s](util::Rng& rng) {
            return std::vector<Tensor>{FillLeaf(rng, s.count, s.cols, Fill::kUniform)};
          },
          [ids, s](const std::vector<Tensor>& in) {
            return tensor::SegmentSumRows(in[0], ids, s.num_segments);
          });
    }

    // SegmentMaxRows gradient flows to the argmax row, so FD needs pairwise
    // distinct, well-separated values (RandDistinct).
    std::vector<SegShape> max_shapes = {{7, 3, 3, true}, {1, 1, 1, true}, {0, 3, 2, true}};
    if (include_large) max_shapes.push_back({4000, 32, 64, false});
    for (const SegShape& s : max_shapes) {
      std::vector<int> ids = RandSegments(idx_rng, s.count, s.num_segments);
      add("SegmentMaxRows", std::to_string(s.count) + "/" + std::to_string(s.num_segments),
          s.fd,
          [s](util::Rng& rng) {
            const Fill fill = s.fd ? Fill::kDistinct : Fill::kUniform;
            return std::vector<Tensor>{FillLeaf(rng, s.count, s.cols, fill)};
          },
          [ids, s](const std::vector<Tensor>& in) {
            return tensor::SegmentMaxRows(in[0], ids, s.num_segments);
          });
    }
  }

  // Select.
  {
    add("Select", "5x4@(2,3)", true,
        [](util::Rng& rng) { return std::vector<Tensor>{RandLeaf(rng, 5, 4)}; },
        [](const std::vector<Tensor>& in) { return tensor::Select(in[0], 2, 3); });
    add("Select", "1x1@(0,0)", true,
        [](util::Rng& rng) { return std::vector<Tensor>{RandLeaf(rng, 1, 1)}; },
        [](const std::vector<Tensor>& in) { return tensor::Select(in[0], 0, 0); });
  }

  // SelectMany: batched Select with a deliberate duplicate (row 2, col 3)
  // so the backward's in-order accumulation over repeated sources is covered.
  {
    std::vector<int> rows = {2, 0, 4, 2, 1, 2, 3};
    std::vector<int> cols = {3, 1, 0, 3, 2, 0, 3};
    add("SelectMany", "5x4/7picks", true,
        [](util::Rng& rng) { return std::vector<Tensor>{RandLeaf(rng, 5, 4)}; },
        [rows, cols](const std::vector<Tensor>& in) {
          return tensor::SelectMany(in[0], rows, cols);
        });
    add("SelectMany", "1x1/1pick", true,
        [](util::Rng& rng) { return std::vector<Tensor>{RandLeaf(rng, 1, 1)}; },
        [](const std::vector<Tensor>& in) {
          return tensor::SelectMany(in[0], {0}, {0});
        });
    if (include_large) {
      std::vector<int> big_rows(500), big_cols(500);
      for (int k = 0; k < 500; ++k) {
        big_rows[k] = idx_rng.UniformInt(300);
        big_cols[k] = idx_rng.UniformInt(16);
      }
      add("SelectMany", "300x16/500picks", false,
          [](util::Rng& rng) { return std::vector<Tensor>{RandLeaf(rng, 300, 16)}; },
          [big_rows, big_cols](const std::vector<Tensor>& in) {
            return tensor::SelectMany(in[0], big_rows, big_cols);
          });
    }
  }

  // NllLoss (CHECK-fails on zero rows; no empty variant).
  {
    struct NllShape {
      int rows, classes;
      bool fd;
    };
    std::vector<NllShape> shapes = {{5, 4, true}, {1, 1, true}};
    if (include_large) shapes.push_back({3000, 16, false});
    for (const NllShape& s : shapes) {
      std::vector<int> targets(s.rows);
      for (auto& t : targets) t = idx_rng.UniformInt(s.classes);
      add("NllLoss", ShapeTag(s.rows, s.classes), s.fd,
          [s](util::Rng& rng) {
            return std::vector<Tensor>{FillLeaf(rng, s.rows, s.classes, Fill::kLogProb)};
          },
          [targets](const std::vector<Tensor>& in) {
            return tensor::NllLoss(in[0], targets);
          });
    }
  }

  return cases;
}

namespace {

// Fixed random weighting of the op output: reduces any output shape to a
// well-conditioned scalar loss that is linear in the output (so the FD error
// comes from the op alone, not the reduction).
Tensor LossWeights(const Tensor& output, uint64_t value_seed) {
  util::Rng rng(value_seed ^ kWeightSeedSalt);
  return Tensor::Uniform(output.rows(), output.cols(), 0.5f, 1.5f, &rng);
}

double WeightedLoss(const Tensor& output, const Tensor& weights) {
  const std::vector<float>& y = output.values();
  const std::vector<float>& w = weights.values();
  double acc = 0.0;
  for (size_t i = 0; i < y.size(); ++i) acc += static_cast<double>(y[i]) * w[i];
  return acc;
}

}  // namespace

std::vector<float> RunOpCaseBitstream(const OpCase& c, uint64_t value_seed) {
  util::Rng rng(value_seed);
  std::vector<Tensor> inputs = c.make_inputs(rng);
  Tensor output = c.forward(inputs);
  Tensor loss = tensor::Sum(tensor::Mul(output, LossWeights(output, value_seed)));
  if (loss.requires_grad()) loss.Backward();
  std::vector<float> stream = output.values();
  stream.push_back(loss.Value());
  for (const Tensor& t : inputs) {
    const std::vector<float> grad = t.GradData();
    stream.insert(stream.end(), grad.begin(), grad.end());
  }
  return stream;
}

double OpCaseMaxGradError(const OpCase& c, uint64_t value_seed, std::string* detail) {
  util::Rng rng(value_seed);
  std::vector<Tensor> inputs = c.make_inputs(rng);
  Tensor probe = c.forward(inputs);
  Tensor weights = LossWeights(probe, value_seed);

  // Analytic gradients.
  for (Tensor& t : inputs) t.ZeroGrad();
  Tensor loss = tensor::Sum(tensor::Mul(c.forward(inputs), weights));
  if (loss.requires_grad()) loss.Backward();

  const float h = 1e-2f;
  double max_rel_err = 0.0;
  for (size_t input_index = 0; input_index < inputs.size(); ++input_index) {
    Tensor& t = inputs[input_index];
    if (!t.requires_grad()) continue;
    for (int r = 0; r < t.rows(); ++r) {
      for (int col = 0; col < t.cols(); ++col) {
        const float original = t.At(r, col);
        t.SetAt(r, col, original + h);
        const double plus = WeightedLoss(c.forward(inputs), weights);
        t.SetAt(r, col, original - h);
        const double minus = WeightedLoss(c.forward(inputs), weights);
        t.SetAt(r, col, original);
        const double numeric = (plus - minus) / (2.0 * h);
        const double analytic = t.GradAt(r, col);
        const double rel_err = std::fabs(analytic - numeric) /
                               std::max({1.0, std::fabs(analytic), std::fabs(numeric)});
        if (rel_err > max_rel_err) {
          max_rel_err = rel_err;
          if (detail != nullptr) {
            char buffer[160];
            std::snprintf(buffer, sizeof(buffer),
                          "input %zu entry (%d,%d): analytic %.6g vs numeric %.6g",
                          input_index, r, col, analytic, numeric);
            *detail = buffer;
          }
        }
      }
    }
  }
  return max_rel_err;
}

}  // namespace revelio::proptest
