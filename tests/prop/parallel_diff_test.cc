// Parallel-vs-serial differential: every ParallelFor'd kernel (all tensor
// ops, forward AND backward) must produce bitwise-identical results across
// thread counts {1, 2, 7, 16}. Large-shape op cases are sized past the
// kernels' parallelization grains so multi-chunk dispatch is genuinely
// exercised; small and degenerate shapes ride along to pin the serial
// fallback path to the same contract.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "prop/prop_util.h"
#include "util/parallel.h"
#include "util/proptest.h"

namespace revelio {
namespace {

using proptest::OpCase;

constexpr int kThreadCounts[] = {1, 2, 7, 16};

class ParallelDiffTest : public ::testing::Test {
 protected:
  void TearDown() override { util::SetNumThreads(1); }
};

// Bitwise equality, treating NaN bit patterns as values (memcmp, not ==).
bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

TEST_F(ParallelDiffTest, AllKernelsBitwiseIdenticalAcrossThreadCounts) {
  const util::PropConfig config = util::DefaultPropConfig(/*num_cases=*/2);
  const std::vector<OpCase> cases =
      proptest::MakeOpCases(/*seed=*/0xd1ff, /*include_large=*/true);

  util::Domain<uint64_t> seed_domain;
  seed_domain.generate = [](util::Rng& rng) { return rng.NextUint64(); };

  for (const OpCase& c : cases) {
    const util::CheckResult result = util::ForAll<uint64_t>(
        "parallel-diff:" + c.op + ":" + c.variant, seed_domain,
        [&c](const uint64_t& value_seed) -> std::string {
          util::SetNumThreads(1);
          const std::vector<float> serial = proptest::RunOpCaseBitstream(c, value_seed);
          for (const int threads : kThreadCounts) {
            util::SetNumThreads(threads);
            const std::vector<float> parallel = proptest::RunOpCaseBitstream(c, value_seed);
            if (!BitwiseEqual(serial, parallel)) {
              util::SetNumThreads(1);
              return "output/grad stream diverges at threads=" + std::to_string(threads);
            }
          }
          util::SetNumThreads(1);
          return "";
        },
        config);
    EXPECT_TRUE(result.ok) << result.report;
  }
}

}  // namespace
}  // namespace revelio
