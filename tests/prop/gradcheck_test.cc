// Universal gradcheck: central finite differences vs autograd for every op
// registered in src/tensor/ops.h, at several shapes including degenerate
// (1x1, empty rows). Coverage is enforced: the test parses ops.h, diffs the
// declared ops against tensor::RegisteredOpNames(), and requires every
// registered op to have at least one FD-checkable harness case.

#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "prop/prop_util.h"
#include "tensor/op_registry.h"
#include "util/proptest.h"

namespace revelio {
namespace {

using proptest::MakeOpCases;
using proptest::OpCase;

#ifndef REVELIO_SOURCE_DIR
#error "REVELIO_SOURCE_DIR must be defined by the build"
#endif

// Ops declared in ops.h, parsed from `Tensor Name(` lines. Every public op
// declaration in that header starts a line with the return type.
std::vector<std::string> ParseOpsHeader() {
  const std::string path = std::string(REVELIO_SOURCE_DIR) + "/src/tensor/ops.h";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<std::string> names;
  std::string line;
  const std::string prefix = "Tensor ";
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) != 0) continue;
    const size_t paren = line.find('(', prefix.size());
    if (paren == std::string::npos) continue;
    names.push_back(line.substr(prefix.size(), paren - prefix.size()));
  }
  return names;
}

TEST(OpRegistryTest, RegistryMatchesOpsHeader) {
  const std::vector<std::string> parsed = ParseOpsHeader();
  ASSERT_FALSE(parsed.empty());
  const std::set<std::string> header_ops(parsed.begin(), parsed.end());
  const std::vector<std::string>& registered = tensor::RegisteredOpNames();
  const std::set<std::string> registry_ops(registered.begin(), registered.end());
  for (const std::string& op : header_ops) {
    EXPECT_TRUE(registry_ops.count(op))
        << "op '" << op << "' is declared in ops.h but missing from "
        << "tensor::RegisteredOpNames(); add it there and give it a gradcheck "
        << "harness in tests/prop/prop_util.cc";
  }
  for (const std::string& op : registry_ops) {
    EXPECT_TRUE(header_ops.count(op))
        << "op '" << op << "' is registered but not declared in ops.h";
  }
}

TEST(OpRegistryTest, EveryRegisteredOpHasGradcheckCase) {
  const std::vector<OpCase> cases = MakeOpCases(/*seed=*/1, /*include_large=*/false);
  std::set<std::string> fd_covered;
  for (const OpCase& c : cases) {
    if (c.fd_checkable) fd_covered.insert(c.op);
  }
  for (const std::string& op : tensor::RegisteredOpNames()) {
    EXPECT_TRUE(fd_covered.count(op))
        << "registered op '" << op << "' has no FD-checkable harness case";
  }
  // And no stray harness entries for unregistered ops.
  for (const OpCase& c : cases) {
    EXPECT_TRUE(tensor::IsRegisteredOp(c.op)) << "harness case for unknown op " << c.op;
  }
}

TEST(GradcheckTest, AllOpsMatchFiniteDifferences) {
  constexpr double kMaxRelError = 1e-3;
  const util::PropConfig config = util::DefaultPropConfig(/*num_cases=*/3);
  const std::vector<OpCase> cases = MakeOpCases(/*seed=*/0xca5e, /*include_large=*/false);

  util::Domain<uint64_t> seed_domain;
  seed_domain.generate = [](util::Rng& rng) { return rng.NextUint64(); };

  int fd_cases = 0;
  double worst_error = 0.0;
  for (const OpCase& c : cases) {
    if (!c.fd_checkable) continue;
    ++fd_cases;
    double case_worst = 0.0;
    const util::CheckResult result = util::ForAll<uint64_t>(
        "gradcheck:" + c.op + ":" + c.variant, seed_domain,
        [&c, &case_worst, kMaxRelError](const uint64_t& value_seed) -> std::string {
          std::string detail;
          const double err = proptest::OpCaseMaxGradError(c, value_seed, &detail);
          if (err > case_worst) case_worst = err;
          if (err < kMaxRelError) return "";
          return "max relative gradient error " + std::to_string(err) + " (" + detail + ")";
        },
        config);
    EXPECT_TRUE(result.ok) << result.report;
    if (case_worst > worst_error) worst_error = case_worst;
  }
  // Guard against a silently degenerate harness: the FD sweep must actually
  // cover many shape variants, and float FD noise means the observed worst
  // error over all ops is never exactly zero when real gradients flow.
  EXPECT_GE(fd_cases, 50) << "gradcheck case table shrank unexpectedly";
  EXPECT_GT(worst_error, 0.0) << "no case produced a nonzero FD-vs-autograd delta; "
                                 "the harness is not exercising gradients";
  ::testing::Test::RecordProperty("fd_cases", fd_cases);
  std::printf("gradcheck: %d FD cases, worst relative error %.3g\n", fd_cases, worst_error);
}

}  // namespace
}  // namespace revelio
