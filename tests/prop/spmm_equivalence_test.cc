// Differential property suite for the fused CSR SpMM aggregation path:
// the fused kernels (tensor::SpmmCsr*) must reproduce the legacy
// Gather -> RowScale -> ScatterAdd chain bit for bit — forward AND backward —
// across seeded graphs, thread counts {1, 2, 7, 16}, and masked/unmasked
// edge weights. Layer-level cases flip the gnn::SetFusedAggregation toggle on
// real GCN/GIN/GAT layers (forward bitwise; gradients bitwise where the
// autograd traversal order is shared, else <= 1e-6 relative). A dedicated
// group mutates graphs (RemoveEdges / AddEdge) after warming the cached CSR
// view, so a stale pattern shows up as a fused-vs-chain divergence.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gnn/layer_edges.h"
#include "gnn/layers.h"
#include "prop/prop_util.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"
#include "util/parallel.h"
#include "util/proptest.h"

namespace revelio {
namespace {

using proptest::GraphSpec;
using tensor::Tensor;

constexpr int kThreadCounts[] = {1, 2, 7, 16};
constexpr int kFeatDim = 5;

class SpmmEquivalenceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::SetNumThreads(1);
    gnn::SetFusedAggregation(true);
  }
};

class FusedModeGuard {
 public:
  explicit FusedModeGuard(bool enabled) : saved_(gnn::FusedAggregationEnabled()) {
    gnn::SetFusedAggregation(enabled);
  }
  ~FusedModeGuard() { gnn::SetFusedAggregation(saved_); }

 private:
  bool saved_;
};

bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

struct EqCase {
  GraphSpec spec;
  uint64_t seed = 0;
  bool masked = false;
};

util::Domain<EqCase> EqCaseDomain(int min_nodes, int max_nodes, bool allow_empty) {
  util::Domain<EqCase> domain;
  domain.generate = [min_nodes, max_nodes, allow_empty](util::Rng& rng) {
    EqCase c;
    c.spec = proptest::GenGraphSpec(rng, min_nodes, max_nodes, allow_empty);
    c.seed = rng.NextUint64();
    c.masked = rng.Bernoulli(0.5);
    return c;
  };
  domain.shrink = [](const EqCase& c) {
    std::vector<EqCase> out;
    for (GraphSpec& spec : proptest::ShrinkGraphSpec(c.spec)) {
      EqCase smaller = c;
      smaller.spec = std::move(spec);
      out.push_back(std::move(smaller));
    }
    return out;
  };
  domain.describe = [](const EqCase& c) {
    return proptest::DescribeGraphSpec(c.spec) + (c.masked ? ", masked" : ", unmasked") +
           ", seed " + util::FormatSeed(c.seed);
  };
  return domain;
}

// Per-layer-edge weights: positive coefficients, with ~30% hard zeros in the
// masked variant (the shape Eq. 6 masks take after thresholding).
std::vector<float> DrawEdgeWeights(util::Rng& rng, int count, bool masked) {
  std::vector<float> w(count);
  for (auto& x : w) {
    x = static_cast<float>(rng.Uniform(0.2, 1.5));
    if (masked && rng.Bernoulli(0.3)) x = 0.0f;
  }
  return w;
}

// Forward values + scalar loss + gradients of every leaf, as one float
// stream for bitwise comparison (mirrors proptest::RunOpCaseBitstream).
std::vector<float> RunToStream(const std::function<Tensor()>& forward,
                               const std::vector<Tensor>& leaves, uint64_t loss_seed) {
  for (Tensor t : leaves) t.ZeroGrad();
  Tensor out = forward();
  util::Rng wrng(loss_seed);
  Tensor weights = Tensor::Uniform(out.rows(), out.cols(), 0.5f, 1.5f, &wrng);
  Tensor loss = tensor::Sum(tensor::Mul(out, weights));
  if (loss.requires_grad()) loss.Backward();
  std::vector<float> stream = out.values();
  stream.push_back(loss.Value());
  for (const Tensor& t : leaves) {
    std::vector<float> grad = t.GradData();
    if (grad.empty()) grad.assign(static_cast<size_t>(t.rows()) * t.cols(), 0.0f);
    stream.insert(stream.end(), grad.begin(), grad.end());
  }
  return stream;
}

// Core differential: SpmmCsrWeighted over `edges.csr` vs the legacy chain
// over the same layer-edge list, forward+backward, at every thread count.
// Both must be bitwise-equal to the single-thread fused stream.
std::string CheckWeightedAggregation(const gnn::LayerEdgeSet& edges, uint64_t seed,
                                     bool masked) {
  const int n = edges.num_nodes;
  const int m = edges.num_layer_edges();
  util::Rng rng(seed);
  const std::vector<float> weight_values = DrawEdgeWeights(rng, m, masked);
  std::vector<float> feature_values(static_cast<size_t>(n) * kFeatDim);
  for (auto& x : feature_values) x = static_cast<float>(rng.Uniform(-2.0, 2.0));
  const uint64_t loss_seed = seed ^ 0x1055eedULL;

  std::vector<float> reference;
  for (const int threads : kThreadCounts) {
    util::SetNumThreads(threads);
    Tensor fused_w =
        Tensor::FromData(m, 1, std::vector<float>(weight_values)).WithRequiresGrad();
    Tensor fused_h =
        Tensor::FromData(n, kFeatDim, std::vector<float>(feature_values)).WithRequiresGrad();
    const std::vector<float> fused = RunToStream(
        [&] { return tensor::SpmmCsrWeighted(edges.csr, fused_w, fused_h); },
        {fused_w, fused_h}, loss_seed);

    Tensor chain_w =
        Tensor::FromData(m, 1, std::vector<float>(weight_values)).WithRequiresGrad();
    Tensor chain_h =
        Tensor::FromData(n, kFeatDim, std::vector<float>(feature_values)).WithRequiresGrad();
    const std::vector<float> chain = RunToStream(
        [&] {
          return tensor::ScatterAddRows(
              tensor::RowScale(tensor::GatherRows(chain_h, edges.src), chain_w), edges.dst,
              edges.num_nodes);
        },
        {chain_w, chain_h}, loss_seed);

    if (!BitwiseEqual(fused, chain)) {
      return "fused vs chain diverges at threads=" + std::to_string(threads);
    }
    if (threads == 1) {
      reference = fused;
    } else if (!BitwiseEqual(fused, reference)) {
      return "fused stream not thread-invariant at threads=" + std::to_string(threads);
    }
  }
  return "";
}

TEST_F(SpmmEquivalenceTest, WeightedFusedMatchesChainBitwise) {
  const util::CheckResult result = util::ForAll<EqCase>(
      "spmm-eq:weighted", EqCaseDomain(1, 12, /*allow_empty=*/true),
      [](const EqCase& c) -> std::string {
        const graph::Graph g = proptest::MakeGraph(c.spec);
        const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(g);
        return CheckWeightedAggregation(edges, c.seed, c.masked);
      },
      util::DefaultPropConfig(160));
  EXPECT_TRUE(result.ok) << result.report;
}

TEST_F(SpmmEquivalenceTest, SumAndMeanFusedMatchChainBitwise) {
  const util::CheckResult result = util::ForAll<EqCase>(
      "spmm-eq:sum-mean", EqCaseDomain(1, 12, /*allow_empty=*/true),
      [](const EqCase& c) -> std::string {
        const graph::Graph g = proptest::MakeGraph(c.spec);
        const int n = g.num_nodes();
        std::vector<int> src(g.num_edges());
        std::vector<int> dst(g.num_edges());
        for (int e = 0; e < g.num_edges(); ++e) {
          src[e] = g.edge(e).src;
          dst[e] = g.edge(e).dst;
        }
        // Mean = sum with constant per-edge weight 1/in_degree(dst); zero
        // in-degree rows never appear as a destination.
        const std::vector<int> in_degrees = g.InDegrees();
        std::vector<float> mean_weights(g.num_edges());
        for (int e = 0; e < g.num_edges(); ++e) {
          mean_weights[e] = 1.0f / static_cast<float>(in_degrees[dst[e]]);
        }
        util::Rng rng(c.seed);
        std::vector<float> feature_values(static_cast<size_t>(n) * kFeatDim);
        for (auto& x : feature_values) x = static_cast<float>(rng.Uniform(-2.0, 2.0));
        const uint64_t loss_seed = c.seed ^ 0x5c5c5c5cULL;

        for (const int threads : kThreadCounts) {
          util::SetNumThreads(threads);
          Tensor sum_x = Tensor::FromData(n, kFeatDim, std::vector<float>(feature_values))
                             .WithRequiresGrad();
          const std::vector<float> fused_sum = RunToStream(
              [&] { return tensor::SpmmCsr(g.InCsr(), sum_x); }, {sum_x}, loss_seed);
          Tensor chain_x = Tensor::FromData(n, kFeatDim, std::vector<float>(feature_values))
                               .WithRequiresGrad();
          const std::vector<float> chain_sum = RunToStream(
              [&] { return tensor::ScatterAddRows(tensor::GatherRows(chain_x, src), dst, n); },
              {chain_x}, loss_seed);
          if (!BitwiseEqual(fused_sum, chain_sum)) {
            return "sum fused vs chain diverges at threads=" + std::to_string(threads);
          }

          Tensor mean_x = Tensor::FromData(n, kFeatDim, std::vector<float>(feature_values))
                              .WithRequiresGrad();
          const std::vector<float> fused_mean = RunToStream(
              [&] { return tensor::SpmmCsrMean(g.InCsr(), mean_x); }, {mean_x}, loss_seed);
          Tensor ref_x = Tensor::FromData(n, kFeatDim, std::vector<float>(feature_values))
                             .WithRequiresGrad();
          const std::vector<float> chain_mean = RunToStream(
              [&] {
                return tensor::ScatterAddRows(
                    tensor::RowScale(tensor::GatherRows(ref_x, src),
                                     Tensor::FromVector(mean_weights)),
                    dst, n);
              },
              {ref_x}, loss_seed);
          if (!BitwiseEqual(fused_mean, chain_mean)) {
            return "mean fused vs chain diverges at threads=" + std::to_string(threads);
          }
        }
        return "";
      },
      util::DefaultPropConfig(140));
  EXPECT_TRUE(result.ok) << result.report;
}

// ---------------------------------------------------------------------------
// Layer-level: real GCN/GIN/GAT under the dispatch toggle
// ---------------------------------------------------------------------------

struct LayerPass {
  std::vector<float> output;
  std::vector<std::vector<float>> grads;
};

LayerPass RunLayerPass(const gnn::GnnLayer& layer, const graph::Graph& g,
                       const gnn::LayerEdgeSet& edges, Tensor h, const Tensor& mask,
                       uint64_t loss_seed) {
  h.ZeroGrad();
  const std::vector<Tensor> params = layer.Parameters();
  for (Tensor p : params) p.ZeroGrad();
  Tensor out = layer.Forward(g, edges, h, mask);
  util::Rng wrng(loss_seed);
  Tensor weights = Tensor::Uniform(out.rows(), out.cols(), 0.5f, 1.5f, &wrng);
  tensor::Sum(tensor::Mul(out, weights)).Backward();
  LayerPass result;
  result.output = out.values();
  result.grads.push_back(h.GradData());
  for (const Tensor& p : params) result.grads.push_back(p.GradData());
  return result;
}

// Forward must be bitwise; gradients may legitimately differ by accumulation
// order when a tensor feeds several ops (GAT's per-head projection), so they
// get a 1e-6 relative budget — bitwise equality trivially passes it.
std::string CompareLayerPasses(const LayerPass& fused, const LayerPass& legacy) {
  if (!BitwiseEqual(fused.output, legacy.output)) return "forward output not bitwise-equal";
  if (fused.grads.size() != legacy.grads.size()) return "gradient count mismatch";
  for (size_t i = 0; i < fused.grads.size(); ++i) {
    std::vector<float> a = fused.grads[i];
    std::vector<float> b = legacy.grads[i];
    if (a.empty()) a.assign(b.size(), 0.0f);
    if (b.empty()) b.assign(a.size(), 0.0f);
    if (a.size() != b.size()) return "grad " + std::to_string(i) + " size mismatch";
    for (size_t k = 0; k < a.size(); ++k) {
      const double rel = std::fabs(static_cast<double>(a[k]) - b[k]) /
                         std::max({1.0, std::fabs(static_cast<double>(a[k])),
                                   std::fabs(static_cast<double>(b[k]))});
      if (rel > 1e-6) {
        return "grad " + std::to_string(i) + "[" + std::to_string(k) + "]: fused " +
               std::to_string(a[k]) + " vs legacy " + std::to_string(b[k]);
      }
    }
  }
  return "";
}

std::string CheckLayerFusedVsLegacy(const gnn::GnnLayer& layer, const graph::Graph& g,
                                    const gnn::LayerEdgeSet& edges, const EqCase& c) {
  util::Rng rng(c.seed ^ 0xab1e);
  Tensor h = proptest::RandLeaf(rng, g.num_nodes(), layer.in_dim());
  Tensor mask;
  if (c.masked) {
    std::vector<float> mask_values(edges.num_layer_edges());
    for (auto& m : mask_values) {
      m = rng.Bernoulli(0.3) ? 0.0f : static_cast<float>(rng.Uniform(0.2, 1.0));
    }
    mask = Tensor::FromData(edges.num_layer_edges(), 1, std::move(mask_values));
  }
  const uint64_t loss_seed = c.seed ^ 0x70a57ULL;
  for (const int threads : kThreadCounts) {
    util::SetNumThreads(threads);
    LayerPass fused_pass, legacy_pass;
    {
      FusedModeGuard guard(true);
      fused_pass = RunLayerPass(layer, g, edges, h, mask, loss_seed);
    }
    {
      FusedModeGuard guard(false);
      legacy_pass = RunLayerPass(layer, g, edges, h, mask, loss_seed);
    }
    const std::string failure = CompareLayerPasses(fused_pass, legacy_pass);
    if (!failure.empty()) return failure + " at threads=" + std::to_string(threads);
  }
  return "";
}

TEST_F(SpmmEquivalenceTest, GcnLayerFusedMatchesLegacy) {
  const util::CheckResult result = util::ForAll<EqCase>(
      "spmm-eq:gcn", EqCaseDomain(1, 9, /*allow_empty=*/false),
      [](const EqCase& c) -> std::string {
        const graph::Graph g = proptest::MakeGraph(c.spec);
        const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(g);
        util::Rng layer_rng(c.seed ^ 0x6c6cULL);
        gnn::GcnLayer layer(kFeatDim, 6, &layer_rng, /*normalize=*/true);
        return CheckLayerFusedVsLegacy(layer, g, edges, c);
      },
      util::DefaultPropConfig(40));
  EXPECT_TRUE(result.ok) << result.report;
}

TEST_F(SpmmEquivalenceTest, GinLayerFusedMatchesLegacy) {
  const util::CheckResult result = util::ForAll<EqCase>(
      "spmm-eq:gin", EqCaseDomain(1, 9, /*allow_empty=*/false),
      [](const EqCase& c) -> std::string {
        const graph::Graph g = proptest::MakeGraph(c.spec);
        const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(g);
        util::Rng layer_rng(c.seed ^ 0x9191ULL);
        gnn::GinLayer layer(kFeatDim, 6, &layer_rng, /*eps=*/0.3f);
        return CheckLayerFusedVsLegacy(layer, g, edges, c);
      },
      util::DefaultPropConfig(40));
  EXPECT_TRUE(result.ok) << result.report;
}

TEST_F(SpmmEquivalenceTest, GatLayerFusedMatchesLegacy) {
  const util::CheckResult result = util::ForAll<EqCase>(
      "spmm-eq:gat", EqCaseDomain(1, 9, /*allow_empty=*/false),
      [](const EqCase& c) -> std::string {
        const graph::Graph g = proptest::MakeGraph(c.spec);
        const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(g);
        util::Rng layer_rng(c.seed ^ 0x9a79a7ULL);
        const bool concat = (c.seed & 1) == 0;
        gnn::GatLayer layer(kFeatDim, 6, /*num_heads=*/2, concat, &layer_rng);
        return CheckLayerFusedVsLegacy(layer, g, edges, c);
      },
      util::DefaultPropConfig(40));
  EXPECT_TRUE(result.ok) << result.report;
}

// ---------------------------------------------------------------------------
// CSR cache invalidation under graph mutation
// ---------------------------------------------------------------------------

// Warm the cached CSR view, mutate the graph (RemoveEdges -> fresh Graph;
// AddEdge -> in-place invalidation), rebuild the layer edges, and require
// fused == chain on the mutated topology. A stale cached pattern would keep
// the old edge set on the fused side only, so the chain acts as the oracle.
TEST_F(SpmmEquivalenceTest, CsrCacheInvalidationAfterGraphMutation) {
  const util::CheckResult result = util::ForAll<EqCase>(
      "spmm-eq:cache-invalidation", EqCaseDomain(2, 10, /*allow_empty=*/false),
      [](const EqCase& c) -> std::string {
        graph::Graph g = proptest::MakeGraph(c.spec);
        (void)g.InCsr();  // warm the cache before any mutation
        std::string failure =
            CheckWeightedAggregation(gnn::BuildLayerEdges(g), c.seed, c.masked);
        if (!failure.empty()) return "pre-mutation: " + failure;

        util::Rng rng(c.seed ^ 0xca0eULL);
        if (g.num_edges() > 0) {
          std::vector<int> removed;
          for (int e = 0; e < g.num_edges(); ++e) {
            if (rng.Bernoulli(0.4)) removed.push_back(e);
          }
          if (removed.empty()) removed.push_back(rng.UniformInt(g.num_edges()));
          const graph::Graph reduced = g.RemoveEdges(removed);
          failure = CheckWeightedAggregation(gnn::BuildLayerEdges(reduced), c.seed ^ 0x9e9eULL,
                                             c.masked);
          if (!failure.empty()) return "post-RemoveEdges: " + failure;
        }

        const int u = rng.UniformInt(g.num_nodes());
        int v = rng.UniformInt(g.num_nodes());
        if (v == u) v = (v + 1) % g.num_nodes();
        g.AddEdge(u, v);
        const gnn::LayerEdgeSet after = gnn::BuildLayerEdges(g);
        if (after.csr->num_edges != g.num_edges() + g.num_nodes()) {
          return "stale CSR pattern after AddEdge (wrong edge count)";
        }
        failure = CheckWeightedAggregation(after, c.seed ^ 0xadd3ULL, c.masked);
        if (!failure.empty()) return "post-AddEdge: " + failure;
        return "";
      },
      util::DefaultPropConfig(100));
  EXPECT_TRUE(result.ok) << result.report;
}

}  // namespace
}  // namespace revelio
