// Dense-reference differential for the GNN layers: GCN / GIN / GAT forward
// and backward are checked against a naive dense-adjacency matmul reference
// built from the layers' own parameters. The real layers aggregate with
// gather / row-scale / scatter-add / segment-softmax; the reference routes
// the same math through dense MatMul / RowSoftmax, so any indexing or
// accumulation bug in the sparse message-passing path shows up as a
// divergence from the obviously-right dense formulation.

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gnn/layer_edges.h"
#include "gnn/layers.h"
#include "prop/prop_util.h"
#include "tensor/ops.h"
#include "util/proptest.h"

namespace revelio {
namespace {

using proptest::GraphSpec;
using tensor::Tensor;

constexpr int kInDim = 5;
constexpr int kOutDim = 6;
constexpr double kRtol = 5e-4;
constexpr double kAtol = 5e-5;

// Forces the aggregation dispatch for one pass; every layer case below runs
// against the dense reference under BOTH the fused SpMM path and the legacy
// gather/scatter chain.
class FusedModeGuard {
 public:
  explicit FusedModeGuard(bool enabled) : saved_(gnn::FusedAggregationEnabled()) {
    gnn::SetFusedAggregation(enabled);
  }
  ~FusedModeGuard() { gnn::SetFusedAggregation(saved_); }

 private:
  bool saved_;
};

struct LayerCase {
  GraphSpec spec;
  uint64_t seed = 0;
  bool use_mask = true;
};

util::Domain<LayerCase> LayerCaseDomain() {
  util::Domain<LayerCase> domain;
  domain.generate = [](util::Rng& rng) {
    LayerCase c;
    c.spec = proptest::GenGraphSpec(rng, 1, 9, /*allow_empty=*/false);
    c.seed = rng.NextUint64();
    c.use_mask = rng.Bernoulli(0.7);
    return c;
  };
  domain.shrink = [](const LayerCase& c) {
    std::vector<LayerCase> out;
    for (GraphSpec& spec : proptest::ShrinkGraphSpec(c.spec)) {
      if (spec.num_nodes == 0) continue;
      LayerCase smaller = c;
      smaller.spec = std::move(spec);
      out.push_back(std::move(smaller));
    }
    return out;
  };
  domain.describe = [](const LayerCase& c) {
    return proptest::DescribeGraphSpec(c.spec) +
           (c.use_mask ? ", masked" : ", unmasked") + ", seed " + util::FormatSeed(c.seed);
  };
  return domain;
}

std::string CompareClose(const char* what, const std::vector<float>& real,
                         const std::vector<float>& ref) {
  if (real.size() != ref.size()) {
    return std::string(what) + ": size mismatch " + std::to_string(real.size()) + " vs " +
           std::to_string(ref.size());
  }
  for (size_t i = 0; i < real.size(); ++i) {
    const double a = real[i];
    const double b = ref[i];
    if (std::fabs(a - b) > kAtol + kRtol * std::max(std::fabs(a), std::fabs(b))) {
      std::ostringstream out;
      out << what << "[" << i << "]: sparse " << a << " vs dense " << b;
      return out.str();
    }
  }
  return "";
}

// Dense per-layer-edge weight matrix: W[dst][src] += weight(e), as a
// constant tensor (coefficients and masks are non-differentiable inputs).
Tensor DenseFromLayerEdges(const gnn::LayerEdgeSet& edges, const std::vector<float>& weight) {
  const int n = edges.num_nodes;
  std::vector<float> dense(static_cast<size_t>(n) * n, 0.0f);
  for (int e = 0; e < edges.num_layer_edges(); ++e) {
    dense[static_cast<size_t>(edges.dst[e]) * n + edges.src[e]] += weight[e];
  }
  return Tensor::FromData(n, n, std::move(dense));
}

// Runs `forward` to a fixed-weight scalar loss and collects the forward
// values, then the gradients of `h` and every layer parameter.
struct PassResult {
  std::vector<float> output;
  std::vector<std::vector<float>> grads;
};

PassResult RunPass(const std::function<Tensor()>& forward, Tensor h,
                   const std::vector<Tensor>& params, uint64_t weight_seed) {
  h.ZeroGrad();
  for (Tensor p : params) p.ZeroGrad();
  Tensor out = forward();
  util::Rng wrng(weight_seed);
  Tensor weights = Tensor::Uniform(out.rows(), out.cols(), 0.5f, 1.5f, &wrng);
  tensor::Sum(tensor::Mul(out, weights)).Backward();
  PassResult result;
  result.output = out.values();
  result.grads.push_back(h.GradData());
  for (const Tensor& p : params) result.grads.push_back(p.GradData());
  return result;
}

std::string ComparePasses(const PassResult& real, const PassResult& ref) {
  std::string failure = CompareClose("forward", real.output, ref.output);
  if (!failure.empty()) return failure;
  if (real.grads.size() != ref.grads.size()) return "gradient count mismatch";
  for (size_t i = 0; i < real.grads.size(); ++i) {
    // A grad never reached by backward is reported as an empty vector, which
    // is equivalent to all-zeros; normalize before comparing.
    std::vector<float> a = real.grads[i];
    std::vector<float> b = ref.grads[i];
    if (a.empty()) a.assign(b.size(), 0.0f);
    if (b.empty()) b.assign(a.size(), 0.0f);
    failure = CompareClose(("grad " + std::to_string(i)).c_str(), a, b);
    if (!failure.empty()) return failure;
  }
  return "";
}

// Shared per-case setup: graph, layer edges, input features, optional mask.
struct CaseSetup {
  graph::Graph graph;
  gnn::LayerEdgeSet edges;
  Tensor h;
  Tensor mask;                     // undefined when !use_mask
  std::vector<float> mask_values;  // ones when unmasked
  uint64_t weight_seed = 0;
};

CaseSetup BuildSetup(const LayerCase& c) {
  CaseSetup s;
  s.graph = proptest::MakeGraph(c.spec);
  s.edges = gnn::BuildLayerEdges(s.graph);
  util::Rng rng(c.seed);
  s.h = proptest::RandLeaf(rng, s.graph.num_nodes(), kInDim);
  s.mask_values.assign(s.edges.num_layer_edges(), 1.0f);
  if (c.use_mask) {
    for (auto& m : s.mask_values) m = static_cast<float>(rng.Uniform(0.2, 1.0));
    s.mask = Tensor::FromData(s.edges.num_layer_edges(), 1,
                              std::vector<float>(s.mask_values));
  }
  s.weight_seed = c.seed ^ 0xfeedf00dULL;
  return s;
}

TEST(DenseReferenceTest, GcnLayerMatchesDenseAdjacency) {
  const util::CheckResult result = util::ForAll<LayerCase>(
      "dense-ref:gcn", LayerCaseDomain(),
      [](const LayerCase& c) -> std::string {
        CaseSetup s = BuildSetup(c);
        util::Rng layer_rng(c.seed ^ 0x6c6cULL);
        gnn::GcnLayer layer(kInDim, kOutDim, &layer_rng, /*normalize=*/true);
        const std::vector<Tensor> params = layer.Parameters();

        // Dense reference: H' = A_hat (H W) + b with
        // A_hat[dst][src] = coeff_e * mask_e.
        std::vector<float> weight = layer.Coefficients(s.graph, s.edges);
        for (int e = 0; e < s.edges.num_layer_edges(); ++e) weight[e] *= s.mask_values[e];
        Tensor a_hat = DenseFromLayerEdges(s.edges, weight);
        PassResult ref = RunPass(
            [&] {
              return tensor::AddRowBroadcast(
                  tensor::MatMul(a_hat, layer.linear().Forward(s.h)), layer.bias());
            },
            s.h, params, s.weight_seed);

        for (const bool fused : {true, false}) {
          FusedModeGuard guard(fused);
          PassResult real = RunPass(
              [&] { return layer.Forward(s.graph, s.edges, s.h, s.mask); }, s.h, params,
              s.weight_seed);
          const std::string failure = ComparePasses(real, ref);
          if (!failure.empty()) return std::string(fused ? "fused: " : "legacy: ") + failure;
        }
        return "";
      },
      util::DefaultPropConfig(60));
  EXPECT_TRUE(result.ok) << result.report;
}

TEST(DenseReferenceTest, GinLayerMatchesDenseAdjacency) {
  const util::CheckResult result = util::ForAll<LayerCase>(
      "dense-ref:gin", LayerCaseDomain(),
      [](const LayerCase& c) -> std::string {
        CaseSetup s = BuildSetup(c);
        util::Rng layer_rng(c.seed ^ 0x9191ULL);
        gnn::GinLayer layer(kInDim, kOutDim, &layer_rng, /*eps=*/0.3f);
        const std::vector<Tensor> params = layer.Parameters();

        // Dense reference: H' = MLP(A H) with A[dst][src] = coeff_e * mask_e,
        // coeff = 1 for base edges and (1 + eps) on the self-loop.
        std::vector<float> weight(s.edges.num_layer_edges(), 1.0f);
        for (int e = s.edges.num_base_edges; e < s.edges.num_layer_edges(); ++e) {
          weight[e] = 1.0f + layer.eps();
        }
        for (int e = 0; e < s.edges.num_layer_edges(); ++e) weight[e] *= s.mask_values[e];
        Tensor a = DenseFromLayerEdges(s.edges, weight);
        PassResult ref = RunPass(
            [&] {
              return layer.mlp_second().Forward(
                  tensor::Relu(layer.mlp_first().Forward(tensor::MatMul(a, s.h))));
            },
            s.h, params, s.weight_seed);

        for (const bool fused : {true, false}) {
          FusedModeGuard guard(fused);
          PassResult real = RunPass(
              [&] { return layer.Forward(s.graph, s.edges, s.h, s.mask); }, s.h, params,
              s.weight_seed);
          const std::string failure = ComparePasses(real, ref);
          if (!failure.empty()) return std::string(fused ? "fused: " : "legacy: ") + failure;
        }
        return "";
      },
      util::DefaultPropConfig(60));
  EXPECT_TRUE(result.ok) << result.report;
}

TEST(DenseReferenceTest, GatLayerMatchesDenseAttention) {
  for (const bool concat : {true, false}) {
    const util::CheckResult result = util::ForAll<LayerCase>(
        concat ? "dense-ref:gat-concat" : "dense-ref:gat-mean", LayerCaseDomain(),
        [concat](const LayerCase& c) -> std::string {
          CaseSetup s = BuildSetup(c);
          const int n = s.graph.num_nodes();
          util::Rng layer_rng(c.seed ^ 0x9a79a7ULL);
          gnn::GatLayer layer(kInDim, kOutDim, /*num_heads=*/3, concat, &layer_rng);
          const std::vector<Tensor> params = layer.Parameters();

          // Dense reference per head: the edge-logit computation is shared,
          // but the attention softmax and aggregation run densely.
          // Logits are scattered into an N x N matrix via a constant one-hot
          // source-incidence matrix (differentiable w.r.t. the logits);
          // non-edge entries get a -80 background so they vanish under
          // RowSoftmax, and the dense mask (0 off-edges) removes even that
          // residual. head_out = (RowSoftmax(E) .* M) Wh, exactly the
          // masked-attention message sum.
          const int num_layer_edges = s.edges.num_layer_edges();
          std::vector<float> one_hot_src(static_cast<size_t>(num_layer_edges) * n, 0.0f);
          for (int e = 0; e < num_layer_edges; ++e) {
            one_hot_src[static_cast<size_t>(e) * n + s.edges.src[e]] = 1.0f;
          }
          Tensor src_incidence = Tensor::FromData(num_layer_edges, n, std::move(one_hot_src));
          std::vector<float> background(static_cast<size_t>(n) * n, -80.0f);
          std::vector<float> dense_mask(static_cast<size_t>(n) * n, 0.0f);
          for (int e = 0; e < num_layer_edges; ++e) {
            const size_t at = static_cast<size_t>(s.edges.dst[e]) * n + s.edges.src[e];
            background[at] = 0.0f;
            dense_mask[at] = s.mask_values[e];
          }
          Tensor background_t = Tensor::FromData(n, n, std::move(background));
          Tensor dense_mask_t = Tensor::FromData(n, n, std::move(dense_mask));

          PassResult ref = RunPass(
              [&] {
                Tensor combined;
                for (int k = 0; k < layer.num_heads(); ++k) {
                  Tensor wh = layer.head_projection(k).Forward(s.h);
                  Tensor score_src = tensor::MatMul(wh, layer.attention_src(k));
                  Tensor score_dst = tensor::MatMul(wh, layer.attention_dst(k));
                  Tensor edge_logits =
                      tensor::Add(tensor::GatherRows(score_src, s.edges.src),
                                  tensor::GatherRows(score_dst, s.edges.dst));
                  edge_logits = tensor::LeakyRelu(edge_logits, 0.2f);
                  Tensor dense_logits = tensor::Add(
                      tensor::ScatterAddRows(tensor::RowScale(src_incidence, edge_logits),
                                             s.edges.dst, n),
                      background_t);
                  Tensor attention =
                      tensor::Mul(tensor::RowSoftmax(dense_logits), dense_mask_t);
                  Tensor head_out = tensor::MatMul(attention, wh);
                  if (!combined.defined()) {
                    combined = head_out;
                  } else if (layer.concat()) {
                    combined = tensor::ConcatCols(combined, head_out);
                  } else {
                    combined = tensor::Add(combined, head_out);
                  }
                }
                if (!layer.concat() && layer.num_heads() > 1) {
                  combined =
                      tensor::MulScalar(combined, 1.0f / static_cast<float>(layer.num_heads()));
                }
                return tensor::AddRowBroadcast(combined, layer.bias());
              },
              s.h, params, s.weight_seed);

          for (const bool fused : {true, false}) {
            FusedModeGuard guard(fused);
            PassResult real = RunPass(
                [&] { return layer.Forward(s.graph, s.edges, s.h, s.mask); }, s.h, params,
                s.weight_seed);
            const std::string failure = ComparePasses(real, ref);
            if (!failure.empty()) return std::string(fused ? "fused: " : "legacy: ") + failure;
          }
          return "";
        },
        util::DefaultPropConfig(40));
    EXPECT_TRUE(result.ok) << result.report;
  }
}

}  // namespace
}  // namespace revelio
