// SIMD tier equivalence (src/tensor/simd.h, DESIGN.md §13): every registered
// tensor op must produce the same forward values, loss, and input gradients
// with SIMD dispatch on as the scalar loops produce with it off, under the
// op's DECLARED tolerance class:
//
//   bitwise       everything except the three DotF32 reductions below — the
//                 vector kernels preserve the serial fold order exactly
//                 (separate mul+add, no FMA, owner-computes partitioning);
//   ulp-bounded   MatMul backward dA, SpmmCsrWeighted backward dW, and
//                 RowScale backward dscale, whose shared lane-partial DotF32
//                 reduces in a different order than the serial loop.
//
// The grid runs threads {1, 2, 7, 16} x pool {on, off}; a separate test pins
// the SIMD path itself bitwise across thread counts (chunk boundaries only
// shift the vector-body/tail split, never the bits), and a plan-session test
// proves replayed tapes honor the runtime toggle because dispatch lives
// inside the recorded chunk closures, not at record time.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "plan/plan.h"
#include "prop/prop_util.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/simd.h"
#include "util/parallel.h"
#include "util/proptest.h"
#include "util/rng.h"

namespace revelio::proptest {
namespace {

using tensor::Tensor;

constexpr uint64_t kSeed = 20260808;

// The declared tolerance class for comparing an op's SIMD stream against its
// scalar stream. The ulp bound is generous for the reordered reductions; the
// absolute floor absorbs entries where the dot cancels to near zero.
util::Tolerance ToleranceFor(const std::string& op) {
  if (op == "MatMul" || op == "SpmmCsrWeighted" || op == "RowScale") {
    return util::Tolerance::Ulps(256, /*abs_floor=*/1e-3);
  }
  return util::Tolerance::Bitwise();
}

class SimdEquivalenceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::SetNumThreads(1);
    tensor::SetPoolEnabled(true);
    tensor::simd::SetEnabled(tensor::simd::Lanes() > 1);
    plan::SetExecPlanEnabled(true);
  }
};

TEST_F(SimdEquivalenceTest, AllOpsMatchScalarUnderDeclaredTolerance) {
  const std::vector<OpCase> cases = MakeOpCases(kSeed, /*include_large=*/true);
  ASSERT_FALSE(cases.empty());
  for (const OpCase& c : cases) {
    // Scalar reference: SIMD off, one thread, pool on.
    util::SetNumThreads(1);
    tensor::SetPoolEnabled(true);
    tensor::simd::SetEnabled(false);
    const std::vector<float> reference = RunOpCaseBitstream(c, kSeed ^ 0xabcdULL);

    tensor::simd::SetEnabled(true);
    const util::Tolerance tolerance = ToleranceFor(c.op);
    for (const int threads : {1, 2, 7, 16}) {
      for (const bool pool_on : {true, false}) {
        util::SetNumThreads(threads);
        tensor::SetPoolEnabled(pool_on);
        const std::vector<float> simd = RunOpCaseBitstream(c, kSeed ^ 0xabcdULL);
        ASSERT_EQ(simd.size(), reference.size()) << c.op << " " << c.variant;
        const std::string failure = util::CompareFloatStreams(
            simd.data(), reference.data(), static_cast<int64_t>(simd.size()), tolerance,
            c.op + "/" + c.variant + " threads=" + std::to_string(threads) + " pool=" +
                (pool_on ? "on" : "off"));
        EXPECT_TRUE(failure.empty()) << failure;
      }
    }
  }
}

// The SIMD path must itself be bitwise deterministic across thread counts —
// including the ulp-bounded reductions, whose lane partials are fixed by
// element index, not by chunk assignment. Owner-computes partitioning means a
// chunk boundary landing mid-vector only moves iterations between the vector
// body of one chunk and the tail of another, computing identical bits.
TEST_F(SimdEquivalenceTest, SimdPathIsBitwiseDeterministicAcrossThreads) {
  if (tensor::simd::Lanes() == 1) GTEST_SKIP() << "scalar build: nothing to pin";
  tensor::simd::SetEnabled(true);
  const std::vector<OpCase> cases = MakeOpCases(kSeed + 1, /*include_large=*/true);
  for (const OpCase& c : cases) {
    util::SetNumThreads(1);
    const std::vector<float> serial = RunOpCaseBitstream(c, kSeed ^ 0x5117ULL);
    for (const int threads : {2, 7, 16}) {
      util::SetNumThreads(threads);
      EXPECT_EQ(RunOpCaseBitstream(c, kSeed ^ 0x5117ULL), serial)
          << c.op << "/" << c.variant << " diverged at " << threads << " threads";
    }
  }
}

// ---------------------------------------------------------------------------
// Recorded plans honor the runtime toggle
// ---------------------------------------------------------------------------

// A small program with elementwise runs (fusable), a MatMul, and a reduction;
// odd shapes so every kernel has a scalar tail.
Tensor BuildProgram(const Tensor& param, const Tensor& mixer) {
  Tensor h = tensor::AddScalar(param, 0.3f);
  h = tensor::Mul(h, h);
  h = tensor::Relu(h);
  return tensor::Sum(tensor::MatMul(h, mixer));
}

std::vector<float> LossAndGrad(const Tensor& loss, const Tensor& param) {
  std::vector<float> stream = {loss.Value()};
  const std::vector<float> grad = param.GradData();
  stream.insert(stream.end(), grad.begin(), grad.end());
  return stream;
}

// Dispatch checks live inside the recorded chunk lambdas, so a tape recorded
// with SIMD on replays scalar after SetEnabled(false) — bitwise equal to a
// fresh eager run at the same toggle setting, for both settings.
TEST_F(SimdEquivalenceTest, PlanReplayHonorsRuntimeSimdToggle) {
  util::SetNumThreads(1);
  for (const bool replay_simd : {true, false}) {
    // Record with the OPPOSITE setting to prove nothing is baked in.
    tensor::simd::SetEnabled(!replay_simd);
    util::Rng rng(kSeed + 7);
    Tensor planned_param = Tensor::Uniform(5, 7, -1.0f, 1.0f, &rng).WithRequiresGrad();
    const Tensor mixer = Tensor::Uniform(7, 3, -1.0f, 1.0f, &rng);
    plan::PlanSession session;
    Tensor planned_loss;
    {
      plan::PlanSession::RecordScope record(&session);
      planned_loss = BuildProgram(planned_param, mixer);
    }
    planned_loss.Backward();
    session.Seal(planned_loss, plan::PlanKey{{kSeed}});
    planned_param.ZeroGrad();

    // Flip the toggle and replay; eager reference at the replay-time setting.
    tensor::simd::SetEnabled(replay_simd);
    ASSERT_TRUE(session.Replay(plan::PlanKey{{kSeed}}));
    util::Rng eager_rng(kSeed + 7);
    Tensor eager_param = Tensor::Uniform(5, 7, -1.0f, 1.0f, &eager_rng).WithRequiresGrad();
    const Tensor eager_mixer = Tensor::Uniform(7, 3, -1.0f, 1.0f, &eager_rng);
    Tensor eager_loss = BuildProgram(eager_param, eager_mixer);
    eager_loss.Backward();
    EXPECT_EQ(LossAndGrad(planned_loss, planned_param), LossAndGrad(eager_loss, eager_param))
        << "replay with simd=" << (replay_simd ? "on" : "off")
        << " diverged from eager at the same setting";
  }
}

// ---------------------------------------------------------------------------
// Observability: the dispatch counters must track actual dispatch
// ---------------------------------------------------------------------------

TEST_F(SimdEquivalenceTest, VectorOpsCounterTracksDispatch) {
  obs::SetEnabled(true);
  obs::Counter* vector_ops =
      obs::MetricsRegistry::Global().GetCounter("tensor.simd.vector_ops");
  obs::Counter* scalar_tail =
      obs::MetricsRegistry::Global().GetCounter("tensor.simd.scalar_tail");
  util::Rng rng(kSeed + 9);
  // 100x7: 700 elements, never a multiple of any vector width > 1.
  const Tensor a = Tensor::Uniform(100, 7, -1.0f, 1.0f, &rng);
  const Tensor b = Tensor::Uniform(100, 7, -1.0f, 1.0f, &rng);

  tensor::simd::SetEnabled(false);
  const uint64_t ops_before = vector_ops->Total();
  tensor::Add(a, b);
  EXPECT_EQ(vector_ops->Total(), ops_before) << "scalar path swept the SIMD counters";

  tensor::simd::SetEnabled(true);
  const uint64_t tail_before = scalar_tail->Total();
  tensor::Add(a, b);
  if (tensor::simd::Lanes() > 1) {
    EXPECT_GT(vector_ops->Total(), ops_before);
    EXPECT_GT(scalar_tail->Total(), tail_before) << "700 % lanes != 0 must leave a tail";
  }
  obs::SetEnabled(false);
}

}  // namespace
}  // namespace revelio::proptest
