// Edge-case hardening: degenerate harness inputs (empty graphs, zero-edge
// k-hop subgraphs, single-node batches) must surface as clean util::Status
// errors from the Try*/Validate entry points — never as CHECK-aborts — and
// the degenerate-but-valid shapes must flow through the full pipeline.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>

#include "core/revelio.h"
#include "explain/explainer.h"
#include "gnn/model.h"
#include "gnn/trainer.h"
#include "graph/batch.h"
#include "graph/graph.h"
#include "graph/subgraph.h"
#include "prop/prop_util.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"
#include "util/parallel.h"
#include "util/proptest.h"
#include "util/rng.h"
#include "util/status.h"

namespace revelio::proptest {
namespace {

using tensor::Tensor;

// --- Try-API property over random (possibly empty) graphs --------------------

TEST(EdgeCaseTest, TryExtractKHopRejectsBadInputsAndAcceptsAllValidTargets) {
  const util::PropConfig config = util::DefaultPropConfig(60, 0xedbe);
  const util::Domain<GraphSpec> domain = GraphDomain(0, 8, /*allow_empty=*/true);
  const util::CheckResult result = util::ForAll<GraphSpec>(
      "khop_status", domain,
      [](const GraphSpec& spec) -> std::string {
        const graph::Graph g = MakeGraph(spec);
        // Out-of-range targets and negative radii: InvalidArgument, not abort.
        for (int bad : {-1, g.num_nodes()}) {
          const auto status_or = graph::TryExtractKHopInSubgraph(g, bad, 2);
          if (status_or.ok()) return "accepted out-of-range target " + std::to_string(bad);
          if (status_or.status().code() != util::StatusCode::kInvalidArgument) {
            return "wrong code for bad target: " + status_or.status().ToString();
          }
        }
        if (g.num_nodes() > 0) {
          const auto status_or = graph::TryExtractKHopInSubgraph(g, 0, -1);
          if (status_or.ok()) return "accepted negative radius";
        }
        // Every in-range target succeeds, including isolated nodes whose
        // subgraph has zero edges.
        for (int t = 0; t < g.num_nodes(); ++t) {
          const auto status_or = graph::TryExtractKHopInSubgraph(g, t, 2);
          if (!status_or.ok()) {
            return "rejected valid target " + std::to_string(t) + ": " +
                   status_or.status().ToString();
          }
          const graph::Subgraph& sub = status_or.value();
          if (sub.node_map.empty() || sub.node_map[sub.target_local] != t) {
            return "subgraph does not contain target " + std::to_string(t);
          }
        }
        return "";
      },
      config);
  EXPECT_TRUE(result.ok) << result.report;
}

// --- Zero-edge k-hop subgraph through the full Revelio pipeline --------------

TEST(EdgeCaseTest, ZeroEdgeKHopSubgraphExplainsCleanly) {
  // Node 0 only has out-edges, so its in-computation subgraph is the single
  // node with zero edges. Revelio must still produce a (self-loop-only) flow
  // explanation instead of aborting.
  graph::Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  const auto sub_or = graph::TryExtractKHopInSubgraph(g, 0, 2);
  ASSERT_TRUE(sub_or.ok()) << sub_or.status().ToString();
  const graph::Subgraph& sub = sub_or.value();
  ASSERT_EQ(sub.graph.num_nodes(), 1);
  ASSERT_EQ(sub.graph.num_edges(), 0);

  util::Rng rng(0x5e1f);
  const Tensor all_features = Tensor::Uniform(4, 3, -1.0f, 1.0f, &rng);
  gnn::GnnConfig model_config;
  model_config.arch = gnn::GnnArch::kGcn;
  model_config.input_dim = 3;
  model_config.hidden_dim = 4;
  model_config.num_classes = 2;
  model_config.num_layers = 2;
  model_config.seed = 7;
  gnn::GnnModel model(model_config);

  explain::ExplanationTask task;
  task.model = &model;
  task.graph = &sub.graph;
  task.features = graph::SliceRows(all_features, sub.node_map);
  task.target_node = sub.target_local;
  task.target_class = 0;
  ASSERT_TRUE(explain::ValidateExplanationTask(task).ok());

  core::RevelioOptions options;
  options.epochs = 5;
  core::RevelioExplainer explainer(options);
  const core::RevelioExplainer::FlowExplanation result =
      explainer.ExplainFlows(task, explain::Objective::kFactual);
  EXPECT_GT(result.flows.num_flows(), 0);  // self-loop chain flows
  for (double s : result.flow_scores) EXPECT_TRUE(std::isfinite(s));
}

// --- Zero-in-degree rows must be exactly +0.0, never stale memory ------------

// +0.0 down to the bit pattern (rules out -0.0 and any stale garbage).
bool IsPositiveZero(float v) {
  uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits == 0;
}

// Churns the allocator with a nonzero buffer so a kernel that skipped
// zero-initialization of untouched output rows would read back garbage
// instead of accidentally-fresh zero pages.
void DirtyHeap() {
  std::vector<float> garbage(size_t{1} << 16, -123.456f);
  volatile float sink = garbage[garbage.size() / 2];
  (void)sink;
}

std::string CheckZeroRows(const char* what, const Tensor& out, const std::vector<int>& rows) {
  for (int r : rows) {
    for (int c = 0; c < out.cols(); ++c) {
      if (!IsPositiveZero(out.At(r, c))) {
        return std::string(what) + ": row " + std::to_string(r) + " col " + std::to_string(c) +
               " is " + std::to_string(out.At(r, c)) + ", expected +0.0";
      }
    }
  }
  return "";
}

TEST(EdgeCaseTest, ZeroInDegreeNodesYieldExactZeroRowsInBothAggregationPaths) {
  // Nodes 0, 2, 3, 5 receive no edges (zero in-degree); nodes 1, 4, 5 have
  // no out-edges, so their dX rows must also be exactly zero.
  graph::Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(2, 1);
  g.AddEdge(3, 4);
  const std::vector<int> zero_in = {0, 2, 3, 5};
  const std::vector<int> zero_out = {1, 4, 5};
  std::vector<int> src(g.num_edges());
  std::vector<int> dst(g.num_edges());
  for (int e = 0; e < g.num_edges(); ++e) {
    src[e] = g.edge(e).src;
    dst[e] = g.edge(e).dst;
  }

  for (const int threads : {1, 2, 7, 16}) {
    util::SetNumThreads(threads);
    util::Rng rng(0x0de6 + threads);
    const Tensor weights = Tensor::Uniform(g.num_edges(), 1, 0.2f, 1.5f, &rng);

    struct Variant {
      const char* name;
      std::function<Tensor(const Tensor&)> forward;
    };
    const std::vector<Variant> variants = {
        {"chain",
         [&](const Tensor& x) {
           return tensor::ScatterAddRows(tensor::GatherRows(x, src), dst, g.num_nodes());
         }},
        {"SpmmCsr", [&](const Tensor& x) { return tensor::SpmmCsr(g.InCsr(), x); }},
        {"SpmmCsrMean", [&](const Tensor& x) { return tensor::SpmmCsrMean(g.InCsr(), x); }},
        {"SpmmCsrWeighted",
         [&](const Tensor& x) { return tensor::SpmmCsrWeighted(g.InCsr(), weights, x); }},
    };
    for (const Variant& v : variants) {
      DirtyHeap();
      Tensor x = Tensor::Uniform(g.num_nodes(), 7, -2.0f, 2.0f, &rng).WithRequiresGrad();
      Tensor out = v.forward(x);
      std::string failure = CheckZeroRows(v.name, out, zero_in);
      EXPECT_EQ(failure, "") << "threads=" << threads;
      tensor::Sum(out).Backward();
      // dX of a node with no out-edges gets no contribution either.
      Tensor grad = Tensor::FromData(x.rows(), x.cols(), x.GradData());
      failure = CheckZeroRows((std::string(v.name) + " dX").c_str(), grad, zero_out);
      EXPECT_EQ(failure, "") << "threads=" << threads;
    }
  }
  util::SetNumThreads(1);
}

// --- Single-node batches ------------------------------------------------------

graph::GraphInstance SingleNodeInstance(uint64_t seed, int feature_dim) {
  graph::GraphInstance inst;
  inst.graph = graph::Graph(1);
  util::Rng rng(seed);
  inst.features = Tensor::Uniform(1, feature_dim, -1.0f, 1.0f, &rng);
  inst.labels = {static_cast<int>(seed % 2)};
  return inst;
}

TEST(EdgeCaseTest, SingleNodeBatchRunsAndTrains) {
  const graph::GraphInstance inst = SingleNodeInstance(11, 3);
  const auto batch_or = graph::TryMakeBatch({&inst});
  ASSERT_TRUE(batch_or.ok()) << batch_or.status().ToString();
  const graph::GraphBatch& batch = batch_or.value();
  EXPECT_EQ(batch.graph.num_nodes(), 1);
  EXPECT_EQ(batch.num_graphs, 1);

  gnn::GnnConfig model_config;
  model_config.arch = gnn::GnnArch::kGin;
  model_config.task = gnn::TaskType::kGraphClassification;
  model_config.input_dim = 3;
  model_config.hidden_dim = 4;
  model_config.num_classes = 2;
  model_config.num_layers = 2;
  model_config.seed = 5;
  gnn::GnnModel model(model_config);
  const Tensor logits = model.Logits(batch.graph, batch.features);
  ASSERT_EQ(logits.rows(), 1);
  ASSERT_EQ(logits.cols(), 2);
  for (float v : logits.values()) EXPECT_TRUE(std::isfinite(v));

  // A dataset of single-node graphs must also survive a short training run.
  std::vector<graph::GraphInstance> instances;
  for (uint64_t s = 0; s < 6; ++s) instances.push_back(SingleNodeInstance(s, 3));
  util::Rng split_rng(3);
  const gnn::Split split = gnn::MakeSplit(static_cast<int>(instances.size()), 0.5, 0.25, &split_rng);
  gnn::TrainConfig train_config;
  train_config.epochs = 3;
  const gnn::TrainMetrics metrics = gnn::TrainGraphModel(&model, instances, split, train_config);
  EXPECT_TRUE(std::isfinite(metrics.final_loss));
}

TEST(EdgeCaseTest, TryMakeBatchRejectsMalformedInputs) {
  EXPECT_EQ(graph::TryMakeBatch({}).status().code(), util::StatusCode::kInvalidArgument);

  const graph::GraphInstance a = SingleNodeInstance(1, 3);
  const graph::GraphInstance b = SingleNodeInstance(2, 4);  // mismatched feature dim
  EXPECT_EQ(graph::TryMakeBatch({&a, &b}).status().code(), util::StatusCode::kInvalidArgument);

  graph::GraphInstance c = SingleNodeInstance(3, 3);
  c.labels = {0, 1};  // node labels on a graph-task instance
  EXPECT_EQ(graph::TryMakeBatch({&a, &c}).status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(graph::TryMakeBatch({&a}).ok());

  // Null pointers anywhere in the list — including slot 0, which the
  // feature-dim probe reads first — must yield InvalidArgument, not a crash.
  EXPECT_EQ(graph::TryMakeBatch({nullptr}).status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(graph::TryMakeBatch({nullptr, &a}).status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(graph::TryMakeBatch({&a, nullptr}).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(EdgeCaseTest, SingleInstanceBatchIsIdentity) {
  // A batch of one multi-edge instance reproduces the instance verbatim:
  // same node count, same edges in the same order, same feature bits, one
  // all-zero segment id per node.
  graph::GraphInstance inst;
  inst.graph = graph::Graph(4);
  inst.graph.AddEdge(0, 1);
  inst.graph.AddEdge(2, 1);
  inst.graph.AddUndirectedEdge(2, 3);
  util::Rng rng(0xba7c);
  inst.features = Tensor::Uniform(4, 3, -1.0f, 1.0f, &rng);
  inst.labels = {1};

  const auto batch_or = graph::TryMakeBatch({&inst});
  ASSERT_TRUE(batch_or.ok()) << batch_or.status().ToString();
  const graph::GraphBatch& batch = batch_or.value();
  EXPECT_EQ(batch.num_graphs, 1);
  ASSERT_EQ(batch.graph.num_nodes(), inst.graph.num_nodes());
  ASSERT_EQ(batch.graph.num_edges(), inst.graph.num_edges());
  for (int e = 0; e < inst.graph.num_edges(); ++e) {
    EXPECT_EQ(batch.graph.edge(e).src, inst.graph.edge(e).src);
    EXPECT_EQ(batch.graph.edge(e).dst, inst.graph.edge(e).dst);
  }
  EXPECT_EQ(batch.features.values(), inst.features.values());
  EXPECT_EQ(batch.node_to_graph, std::vector<int>(4, 0));
  EXPECT_EQ(batch.labels, inst.labels);
}

// --- Task validation ----------------------------------------------------------

TEST(EdgeCaseTest, ValidateExplanationTaskCatchesDegenerateInputs) {
  gnn::GnnConfig model_config;
  model_config.input_dim = 3;
  model_config.hidden_dim = 4;
  model_config.num_classes = 2;
  model_config.num_layers = 2;
  gnn::GnnModel model(model_config);

  graph::Graph empty(0);
  graph::Graph one(1);
  util::Rng rng(9);
  const Tensor features = Tensor::Uniform(1, 3, -1.0f, 1.0f, &rng);

  explain::ExplanationTask task;
  task.model = &model;
  task.graph = &one;
  task.features = features;
  task.target_node = 0;
  task.target_class = 1;
  EXPECT_TRUE(explain::ValidateExplanationTask(task).ok());

  explain::ExplanationTask bad = task;
  bad.model = nullptr;
  EXPECT_EQ(explain::ValidateExplanationTask(bad).code(), util::StatusCode::kInvalidArgument);

  bad = task;
  bad.graph = nullptr;
  EXPECT_EQ(explain::ValidateExplanationTask(bad).code(), util::StatusCode::kInvalidArgument);

  // Empty graph: previously an uncaught CHECK deep inside flow enumeration.
  bad = task;
  bad.graph = &empty;
  EXPECT_EQ(explain::ValidateExplanationTask(bad).code(), util::StatusCode::kInvalidArgument);

  bad = task;
  bad.features = Tensor::Uniform(2, 3, -1.0f, 1.0f, &rng);  // rows != nodes
  EXPECT_EQ(explain::ValidateExplanationTask(bad).code(), util::StatusCode::kInvalidArgument);

  bad = task;
  bad.features = Tensor::Uniform(1, 5, -1.0f, 1.0f, &rng);  // cols != input_dim
  EXPECT_EQ(explain::ValidateExplanationTask(bad).code(), util::StatusCode::kInvalidArgument);

  bad = task;
  bad.target_node = 4;  // out of range
  EXPECT_EQ(explain::ValidateExplanationTask(bad).code(), util::StatusCode::kInvalidArgument);

  bad = task;
  bad.target_node = -1;  // graph-style task against a node model
  EXPECT_EQ(explain::ValidateExplanationTask(bad).code(), util::StatusCode::kInvalidArgument);

  bad = task;
  bad.target_class = 2;
  EXPECT_EQ(explain::ValidateExplanationTask(bad).code(), util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace revelio::proptest
