// Determinism: with a fixed util::Rng seed, the training loss curve and the
// Revelio flow ranking are bitwise-identical across two independent runs and
// across thread counts 1 vs 4 (the CLI's --threads flag maps onto
// util::SetNumThreads). This pins the repo-wide determinism contract: every
// parallel kernel partitions its OUTPUT range, so results never depend on
// the thread count.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/revelio.h"
#include "explain/explainer.h"
#include "flow/flow_scores.h"
#include "gnn/model.h"
#include "gnn/trainer.h"
#include "graph/graph.h"
#include "graph/subgraph.h"
#include "tensor/pool.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace revelio {
namespace {

using tensor::Tensor;

constexpr uint64_t kSeed = 20260805;

struct Instance {
  graph::Graph graph;
  Tensor features;
  std::vector<int> labels;
};

// Small deterministic instance: ring + random chords, random features and
// labels. Everything derives from kSeed.
Instance MakeInstance() {
  Instance inst;
  util::Rng rng(kSeed);
  const int n = 24;
  inst.graph = graph::Graph(n);
  for (int v = 0; v < n; ++v) inst.graph.AddUndirectedEdge(v, (v + 1) % n);
  for (int i = 0; i < 16; ++i) {
    const int u = rng.UniformInt(n);
    const int v = rng.UniformInt(n);
    if (u != v && !inst.graph.HasEdge(u, v)) inst.graph.AddEdge(u, v);
  }
  inst.features = Tensor::Uniform(n, 5, -1.0f, 1.0f, &rng);
  inst.labels.resize(n);
  for (auto& l : inst.labels) l = rng.UniformInt(2);
  return inst;
}

gnn::GnnConfig ModelConfig() {
  gnn::GnnConfig config;
  config.arch = gnn::GnnArch::kGcn;
  config.task = gnn::TaskType::kNodeClassification;
  config.input_dim = 5;
  config.hidden_dim = 8;
  config.num_classes = 2;
  config.num_layers = 2;
  config.seed = kSeed + 1;
  return config;
}

std::vector<float> TrainOnce() {
  const Instance inst = MakeInstance();
  gnn::GnnModel model(ModelConfig());
  util::Rng split_rng(kSeed + 2);
  const gnn::Split split = gnn::MakeSplit(inst.graph.num_nodes(), 0.6, 0.2, &split_rng);
  gnn::TrainConfig config;
  config.epochs = 25;
  const gnn::TrainMetrics metrics =
      gnn::TrainNodeModel(&model, inst.graph, inst.features, inst.labels, split, config);
  EXPECT_EQ(static_cast<int>(metrics.loss_curve.size()), config.epochs);
  EXPECT_EQ(metrics.loss_curve.back(), static_cast<float>(metrics.final_loss));
  return metrics.loss_curve;
}

struct RevelioRun {
  std::vector<double> flow_scores;
  std::vector<int> ranking;
  std::vector<double> edge_scores;
};

RevelioRun ExplainOnce() {
  const Instance inst = MakeInstance();
  gnn::GnnModel model(ModelConfig());
  core::RevelioOptions options;
  options.epochs = 20;
  options.seed = kSeed + 3;
  core::RevelioExplainer explainer(options);
  explain::ExplanationTask task;
  task.model = &model;
  task.graph = &inst.graph;
  task.features = inst.features;
  task.target_node = 3;
  task.target_class = 1;
  const core::RevelioExplainer::FlowExplanation result =
      explainer.ExplainFlows(task, explain::Objective::kFactual);
  RevelioRun run;
  run.flow_scores = result.flow_scores;
  run.ranking = flow::TopKFlows(result.flow_scores, 10);
  run.edge_scores = result.edge_scores;
  return run;
}

class DeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::SetNumThreads(1);
    tensor::SetPoolEnabled(true);
  }
};

TEST_F(DeterminismTest, LossCurveBitwiseIdenticalAcrossRunsAndThreads) {
  util::SetNumThreads(1);
  const std::vector<float> first = TrainOnce();
  const std::vector<float> second = TrainOnce();
  EXPECT_EQ(first, second) << "same seed, same thread count: loss curves differ";

  util::SetNumThreads(4);
  const std::vector<float> threaded = TrainOnce();
  EXPECT_EQ(first, threaded) << "--threads 1 vs --threads 4: loss curves differ";
}

TEST_F(DeterminismTest, RevelioFlowRankingBitwiseIdenticalAcrossRunsAndThreads) {
  util::SetNumThreads(1);
  const RevelioRun first = ExplainOnce();
  ASSERT_FALSE(first.flow_scores.empty());
  const RevelioRun second = ExplainOnce();
  EXPECT_EQ(first.flow_scores, second.flow_scores)
      << "same seed, same thread count: flow scores differ";
  EXPECT_EQ(first.ranking, second.ranking);
  EXPECT_EQ(first.edge_scores, second.edge_scores);

  util::SetNumThreads(4);
  const RevelioRun threaded = ExplainOnce();
  EXPECT_EQ(first.flow_scores, threaded.flow_scores)
      << "--threads 1 vs --threads 4: flow scores differ";
  EXPECT_EQ(first.ranking, threaded.ranking);
  EXPECT_EQ(first.edge_scores, threaded.edge_scores);
}

// The pooled allocator is a pure memory-reuse optimization: turning it off
// (REVELIO_TENSOR_POOL=0), running it cold, or running it warm (free lists
// primed with dirty buffers from a prior run) must leave the training loss
// curve and the Revelio flow explanation bitwise-unchanged, at 1 and 4
// threads.
TEST_F(DeterminismTest, PoolOnOffAndWarmColdLeaveResultsBitwiseIdentical) {
  for (const int threads : {1, 4}) {
    util::SetNumThreads(threads);
    tensor::SetPoolEnabled(false);
    const std::vector<float> unpooled_curve = TrainOnce();
    const RevelioRun unpooled_run = ExplainOnce();
    ASSERT_FALSE(unpooled_run.flow_scores.empty());

    tensor::SetPoolEnabled(true);
    const std::vector<float> cold_curve = TrainOnce();
    const RevelioRun cold_run = ExplainOnce();
    // Second pooled pass: everything now comes from recycled buffers.
    const std::vector<float> warm_curve = TrainOnce();
    const RevelioRun warm_run = ExplainOnce();

    EXPECT_EQ(unpooled_curve, cold_curve)
        << "pool on vs off: loss curves differ at threads=" << threads;
    EXPECT_EQ(cold_curve, warm_curve)
        << "cold vs warm pool: loss curves differ at threads=" << threads;
    EXPECT_EQ(unpooled_run.flow_scores, cold_run.flow_scores)
        << "pool on vs off: flow scores differ at threads=" << threads;
    EXPECT_EQ(cold_run.flow_scores, warm_run.flow_scores)
        << "cold vs warm pool: flow scores differ at threads=" << threads;
    EXPECT_EQ(unpooled_run.ranking, cold_run.ranking);
    EXPECT_EQ(unpooled_run.edge_scores, cold_run.edge_scores);
    EXPECT_EQ(warm_run.ranking, unpooled_run.ranking);
    EXPECT_EQ(warm_run.edge_scores, unpooled_run.edge_scores);
  }
}

// The k-hop extraction feeds every explanation task, so its output order is
// part of the determinism contract: node_map and edge_map must be strictly
// ascending in the global ids (canonical, independent of BFS discovery
// order) and bitwise-stable across repeated calls.
TEST_F(DeterminismTest, KHopExtractionIsCanonicalAndStable) {
  const Instance inst = MakeInstance();
  for (const int target : {0, 3, 11, 23}) {
    for (const int k : {1, 2, 3}) {
      const graph::Subgraph sub = graph::ExtractKHopInSubgraph(inst.graph, target, k);
      ASSERT_FALSE(sub.node_map.empty());
      for (size_t i = 1; i < sub.node_map.size(); ++i) {
        EXPECT_LT(sub.node_map[i - 1], sub.node_map[i])
            << "node_map not strictly ascending at target=" << target << " k=" << k;
      }
      for (size_t i = 1; i < sub.edge_map.size(); ++i) {
        EXPECT_LT(sub.edge_map[i - 1], sub.edge_map[i])
            << "edge_map not strictly ascending at target=" << target << " k=" << k;
      }
      EXPECT_EQ(sub.node_map[sub.target_local], target);

      const graph::Subgraph again = graph::ExtractKHopInSubgraph(inst.graph, target, k);
      EXPECT_EQ(sub.node_map, again.node_map);
      EXPECT_EQ(sub.edge_map, again.edge_map);
      EXPECT_EQ(sub.target_local, again.target_local);
      EXPECT_EQ(sub.graph.edges(), again.graph.edges());
    }
  }
}

}  // namespace
}  // namespace revelio
