// bf16 storage tier (tensor/bf16.h, DESIGN.md §13): the conversion's stated
// error model, proven as properties —
//   round trip    |x - ToF32(FromF32(x))| <= 2^-8 |x| for finite normal x,
//   RNE ties      exact halfway patterns round to the even bf16 mantissa,
//   specials      Inf exact both ways, NaN stays NaN (never collapses to Inf),
//   monotone      x <= y implies rt(x) <= rt(y) over all finite floats,
//   kernels       PackBf16/WidenBf16 sweeps match the scalar converts
//                 bitwise at every tail length, and AxpyBf16 equals AxpyF32
//                 on the pre-widened array (widening is exact, so the mixed
//                 loader changes storage, never arithmetic) —
// plus the engagement contract: eval probes under an EvalScope shift by at
// most the stated epsilon, and anything touching gradients is bitwise
// untouched even with the toggle forced on.
//
// Every test forces the toggle through SetEvalStorage, never the env, and
// restores it, so the rest of the suite keeps running pure f32.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "explain/explainer.h"
#include "gnn/model.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "prop/prop_util.h"
#include "tensor/bf16.h"
#include "tensor/ops.h"
#include "tensor/simd.h"
#include "util/parallel.h"
#include "util/proptest.h"
#include "util/rng.h"

namespace revelio::proptest {
namespace {

using tensor::Tensor;
namespace bf16 = tensor::bf16;

constexpr uint64_t kSeed = 20260810;

float FromBits(uint32_t bits) {
  float f = 0.0f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

uint32_t ToBits(float f) {
  uint32_t bits = 0;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

std::string DescribeFloat(float f) {
  std::ostringstream out;
  out.precision(9);
  out << f << " (0x" << std::hex << ToBits(f) << ")";
  return out.str();
}

// Uniform over the full bit space, re-drawn until finite and normal (the
// stated relative bound only holds above the subnormal range, where bf16's
// coarser subnormal spacing takes over).
util::Domain<float> NormalFloatDomain() {
  util::Domain<float> domain;
  domain.generate = [](util::Rng& rng) {
    for (;;) {
      const float f = FromBits(static_cast<uint32_t>(rng.NextUint64()));
      if (std::isfinite(f) && (f == 0.0f || std::fabs(f) >= 1.17549435e-38f)) return f;
    }
  };
  domain.describe = DescribeFloat;
  return domain;
}

class Bf16EvalTest : public ::testing::Test {
 protected:
  void TearDown() override {
    bf16::SetEvalStorage(false);
    util::SetNumThreads(1);
  }
};

TEST_F(Bf16EvalTest, RoundTripWithinStatedEpsilonOnNormals) {
  const util::CheckResult result = util::ForAll<float>(
      "bf16_round_trip_epsilon", NormalFloatDomain(),
      [](float x) -> std::string {
        const float rt = bf16::ToF32(bf16::FromF32(x));
        const double bound = std::ldexp(std::fabs(static_cast<double>(x)), -8);
        if (std::fabs(static_cast<double>(rt) - static_cast<double>(x)) > bound) {
          return "round trip " + DescribeFloat(rt) + " outside 2^-8 |x| of " + DescribeFloat(x);
        }
        if (std::signbit(rt) != std::signbit(x)) {
          return "round trip lost the sign of " + DescribeFloat(x);
        }
        return "";
      },
      util::DefaultPropConfig(2000, kSeed));
  EXPECT_TRUE(result.ok) << result.report;
}

TEST_F(Bf16EvalTest, RoundsHalfwayCasesToNearestEven) {
  // 0x3F808000 is exactly halfway between bf16 0x3F80 (1.0) and 0x3F81:
  // ties go to the even mantissa, i.e. down. One mantissa step up,
  // 0x3F818000 is halfway between 0x3F81 and 0x3F82: even is up.
  EXPECT_EQ(bf16::FromF32(FromBits(0x3F808000u)), 0x3F80u);
  EXPECT_EQ(bf16::FromF32(FromBits(0x3F818000u)), 0x3F82u);
  // One past halfway always rounds away from the lower neighbor.
  EXPECT_EQ(bf16::FromF32(FromBits(0x3F808001u)), 0x3F81u);
  // Just below halfway truncates.
  EXPECT_EQ(bf16::FromF32(FromBits(0x3F807FFFu)), 0x3F80u);
  // Sign rides along unchanged.
  EXPECT_EQ(bf16::FromF32(FromBits(0xBF808000u)), 0xBF80u);
  EXPECT_EQ(bf16::FromF32(FromBits(0xBF818000u)), 0xBF82u);
  // Exactly representable values are fixed points.
  EXPECT_EQ(bf16::FromF32(1.0f), 0x3F80u);
  EXPECT_EQ(bf16::ToF32(0x3F80u), 1.0f);
  EXPECT_EQ(bf16::ToF32(bf16::FromF32(0.0f)), 0.0f);
  EXPECT_TRUE(std::signbit(bf16::ToF32(bf16::FromF32(-0.0f))));
}

TEST_F(Bf16EvalTest, PreservesInfAndNan) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(bf16::ToF32(bf16::FromF32(inf)), inf);
  EXPECT_EQ(bf16::ToF32(bf16::FromF32(-inf)), -inf);
  // A NaN whose payload lives entirely in the truncated low bits must stay
  // NaN — naive round-and-truncate would collapse 0x7F800001 to Inf.
  EXPECT_TRUE(std::isnan(bf16::ToF32(bf16::FromF32(FromBits(0x7F800001u)))));
  EXPECT_TRUE(std::isnan(bf16::ToF32(bf16::FromF32(FromBits(0xFF800001u)))));
  EXPECT_TRUE(std::isnan(bf16::ToF32(bf16::FromF32(std::nanf("")))));
  // Large finite values saturating past bf16's largest finite? They cannot:
  // bf16 shares f32's exponent range, but rounding can carry into Inf at the
  // very top — that carry must produce a clean Inf, not a NaN pattern.
  const float near_max = FromBits(0x7F7FFFFFu);  // f32 max: rounds up to Inf
  EXPECT_TRUE(std::isinf(bf16::ToF32(bf16::FromF32(near_max))));
}

TEST_F(Bf16EvalTest, ConversionIsMonotoneOverFiniteFloats) {
  util::Domain<std::pair<float, float>> domain;
  domain.generate = [](util::Rng& rng) {
    auto finite = [&rng] {
      for (;;) {
        const float f = FromBits(static_cast<uint32_t>(rng.NextUint64()));
        if (std::isfinite(f)) return f;
      }
    };
    return std::make_pair(finite(), finite());
  };
  domain.describe = [](const std::pair<float, float>& p) {
    return DescribeFloat(p.first) + ", " + DescribeFloat(p.second);
  };
  const util::CheckResult result = util::ForAll<std::pair<float, float>>(
      "bf16_monotone", domain,
      [](const std::pair<float, float>& p) -> std::string {
        const float lo = std::min(p.first, p.second);
        const float hi = std::max(p.first, p.second);
        if (bf16::ToF32(bf16::FromF32(lo)) > bf16::ToF32(bf16::FromF32(hi))) {
          return "rounding reordered " + DescribeFloat(lo) + " above " + DescribeFloat(hi);
        }
        return "";
      },
      util::DefaultPropConfig(2000, kSeed + 1));
  EXPECT_TRUE(result.ok) << result.report;
}

TEST_F(Bf16EvalTest, PackAndWidenSweepsMatchScalarConvertsAtEveryTail) {
  util::Rng rng(kSeed + 2);
  for (const int n : {1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100}) {
    std::vector<float> src(n);
    for (auto& x : src) x = static_cast<float>(rng.Uniform(-8.0, 8.0));
    std::vector<uint16_t> packed(n, 0);
    tensor::simd::PackBf16(src.data(), packed.data(), n);
    std::vector<float> widened(n, 0.0f);
    tensor::simd::WidenBf16(packed.data(), widened.data(), n);
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(packed[i], bf16::FromF32(src[i])) << "n=" << n << " i=" << i;
      ASSERT_EQ(ToBits(widened[i]), ToBits(bf16::ToF32(packed[i]))) << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(Bf16EvalTest, AxpyBf16EqualsAxpyOnPreWidenedArray) {
  // Widening is a zero-extend, so the mixed kernel must be ARITHMETICALLY
  // identical to f32 axpy on the widened input — storage changes, bits don't.
  util::Rng rng(kSeed + 3);
  for (const int n : {1, 7, 8, 13, 64, 101}) {
    std::vector<float> x(n);
    for (auto& v : x) v = static_cast<float>(rng.Uniform(-2.0, 2.0));
    std::vector<uint16_t> packed(n);
    tensor::simd::PackBf16(x.data(), packed.data(), n);
    std::vector<float> widened(n);
    tensor::simd::WidenBf16(packed.data(), widened.data(), n);

    std::vector<float> y_mixed(n, 0.25f);
    std::vector<float> y_f32(n, 0.25f);
    const float a = 1.7f;
    tensor::simd::AxpyBf16(a, packed.data(), y_mixed.data(), n);
    tensor::simd::AxpyF32(a, widened.data(), y_f32.data(), n);
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(ToBits(y_mixed[i]), ToBits(y_f32[i])) << "n=" << n << " i=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Engagement contract on real eval probes
// ---------------------------------------------------------------------------

struct EvalFixture {
  graph::Graph graph;
  Tensor features;
  gnn::GnnModel model;
  std::vector<double> edge_scores;

  static gnn::GnnConfig Config() {
    gnn::GnnConfig config;
    config.arch = gnn::GnnArch::kGcn;
    config.task = gnn::TaskType::kNodeClassification;
    config.input_dim = 5;
    config.hidden_dim = 6;
    config.num_classes = 2;
    config.num_layers = 2;
    config.seed = kSeed + 10;
    return config;
  }

  EvalFixture() : model(Config()) {
    util::Rng rng(kSeed + 11);
    const int n = 9;
    graph = graph::Graph(n);
    for (int v = 0; v < n; ++v) graph.AddUndirectedEdge(v, (v + 1) % n);
    graph.AddEdge(0, 4);
    graph.AddEdge(3, 7);
    features = Tensor::Uniform(n, 5, -1.0f, 1.0f, &rng);
    model.Freeze();
    edge_scores.resize(graph.num_edges());
    for (auto& s : edge_scores) s = rng.Uniform(0.0, 1.0);
  }

  explain::ExplanationTask Task() const {
    explain::ExplanationTask task;
    task.model = &model;
    task.graph = &graph;
    task.features = features;
    task.target_node = 2;
    task.target_class = 1;
    return task;
  }
};

TEST_F(Bf16EvalTest, FidelityProbesWithinStatedEpsilonAndActuallyPack) {
  obs::SetEnabled(true);
  EvalFixture fx;
  const explain::ExplanationTask task = fx.Task();

  bf16::SetEvalStorage(false);
  const double fid_minus_f32 = eval::FidelityMinus(task, fx.edge_scores, 0.7);
  const double fid_plus_f32 = eval::FidelityPlus(task, fx.edge_scores, 0.7);

  obs::Counter* packs = obs::MetricsRegistry::Global().GetCounter("tensor.bf16.packs");
  const uint64_t packs_before = packs->Total();
  bf16::SetEvalStorage(true);
  const double fid_minus_bf16 = eval::FidelityMinus(task, fx.edge_scores, 0.7);
  const double fid_plus_bf16 = eval::FidelityPlus(task, fx.edge_scores, 0.7);
  obs::SetEnabled(false);

  // Fidelity is a difference of class probabilities; bf16 operand storage
  // perturbs each probe by at most a few parts in 2^8 through the frozen
  // 2-layer model, comfortably inside 0.05 absolute.
  EXPECT_NEAR(fid_minus_bf16, fid_minus_f32, 0.05);
  EXPECT_NEAR(fid_plus_bf16, fid_plus_f32, 0.05);
  EXPECT_GT(packs->Total(), packs_before)
      << "REVELIO_EVAL_BF16 probes never packed an operand (tier silently off)";
}

TEST_F(Bf16EvalTest, GradientBearingWorkIsBitwiseUntouchedEvenInScope) {
  EvalFixture fx;
  // A mask-training-shaped step: grad-bearing input against frozen weights,
  // run inside an active EvalScope with the toggle on. The requires-grad gate
  // must keep every operand in f32, so the result is bitwise identical to the
  // toggle-off run.
  auto run_step = [&fx]() {
    util::Rng rng(kSeed + 12);
    Tensor x = Tensor::Uniform(9, 5, -1.0f, 1.0f, &rng).WithRequiresGrad();
    Tensor w = Tensor::Uniform(5, 4, -1.0f, 1.0f, &rng).WithRequiresGrad();
    Tensor loss = tensor::Sum(tensor::Relu(tensor::MatMul(x, w)));
    loss.Backward();
    std::vector<float> stream = {loss.Value()};
    const std::vector<float> gx = x.GradData();
    const std::vector<float> gw = w.GradData();
    stream.insert(stream.end(), gx.begin(), gx.end());
    stream.insert(stream.end(), gw.begin(), gw.end());
    return stream;
  };

  bf16::SetEvalStorage(false);
  const std::vector<float> reference = run_step();

  bf16::SetEvalStorage(true);
  {
    bf16::EvalScope scope;
    ASSERT_TRUE(bf16::EvalScope::Active());
    EXPECT_EQ(run_step(), reference) << "bf16 tier leaked into a gradient path";
  }
  // Outside any scope the tier must also stay out, toggle notwithstanding.
  EXPECT_FALSE(bf16::EvalScope::Active());
  EXPECT_EQ(run_step(), reference);
}

}  // namespace
}  // namespace revelio::proptest
