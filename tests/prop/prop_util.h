#ifndef REVELIO_TESTS_PROP_PROP_UTIL_H_
#define REVELIO_TESTS_PROP_PROP_UTIL_H_

// Shared generators for the property suites (tests/prop/*):
//  - seeded random tensors (incl. kink-avoiding values for Relu-family FD),
//  - random graphs covering the degenerate shapes the paper's instances can
//    produce (empty, self-loop-only/edgeless, disconnected, star, dense),
//  - an op-harness registry with one or more (shape, inputs, forward) cases
//    per registered tensor op, reused by the gradcheck and the
//    parallel-vs-serial differential suites.
//
// Everything is deterministic in the provided seeds; nothing here reads
// wall-clock or global RNG state.

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/proptest.h"
#include "util/rng.h"

namespace revelio::proptest {

using tensor::Tensor;

// ---------------------------------------------------------------------------
// Tensor generators
// ---------------------------------------------------------------------------

// Leaf tensor with uniform entries in [lo, hi), requires_grad set.
inline Tensor RandLeaf(util::Rng& rng, int rows, int cols, float lo = -2.0f, float hi = 2.0f) {
  return Tensor::Uniform(rows, cols, lo, hi, &rng).WithRequiresGrad();
}

// Leaf tensor whose entries have |x| in [min_abs, max_abs) with random sign:
// keeps values away from the Relu/LeakyRelu kink so central differences with
// h < min_abs never cross it.
inline Tensor RandAwayFromZero(util::Rng& rng, int rows, int cols, float min_abs = 0.25f,
                               float max_abs = 2.0f) {
  std::vector<float> v(static_cast<size_t>(rows) * cols);
  for (auto& x : v) {
    const float mag = static_cast<float>(rng.Uniform(min_abs, max_abs));
    x = rng.Bernoulli(0.5) ? mag : -mag;
  }
  return Tensor::FromData(rows, cols, std::move(v)).WithRequiresGrad();
}

// Leaf tensor whose entries are pairwise-distinct with gaps >= `gap`
// (a shuffled grid): keeps SegmentMaxRows argmaxes stable under +/-h
// perturbation as long as 2h < gap.
inline Tensor RandDistinct(util::Rng& rng, int rows, int cols, float gap = 0.4f) {
  const int n = rows * cols;
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(&order);
  std::vector<float> v(n);
  for (int i = 0; i < n; ++i) v[i] = gap * static_cast<float>(order[i] - n / 2);
  return Tensor::FromData(rows, cols, std::move(v)).WithRequiresGrad();
}

// Random segment ids: `count` values in [0, num_segments).
inline std::vector<int> RandSegments(util::Rng& rng, int count, int num_segments) {
  std::vector<int> ids(count);
  for (auto& s : ids) s = rng.UniformInt(num_segments);
  return ids;
}

// ---------------------------------------------------------------------------
// Graph generators
// ---------------------------------------------------------------------------

// A graph description that can be shrunk structurally (unlike graph::Graph,
// which only supports appends).
struct GraphSpec {
  std::string kind = "random";
  int num_nodes = 0;
  std::vector<std::pair<int, int>> edges;  // directed, no self-loops, unique
};

inline graph::Graph MakeGraph(const GraphSpec& spec) {
  graph::Graph g(spec.num_nodes);
  for (const auto& [u, v] : spec.edges) g.AddEdge(u, v);
  return g;
}

inline std::string DescribeGraphSpec(const GraphSpec& spec) {
  std::ostringstream out;
  out << spec.kind << " graph, " << spec.num_nodes << " nodes, edges {";
  for (size_t i = 0; i < spec.edges.size(); ++i) {
    if (i > 0) out << ", ";
    out << spec.edges[i].first << "->" << spec.edges[i].second;
  }
  out << "}";
  return out.str();
}

// Draws one graph of `min_nodes..max_nodes` nodes. Cycles through the
// degenerate families the suites must cover: empty (0 nodes), edgeless
// (self-loop-only layer edges), star, path, dense complete, disconnected
// two-component, and Erdos-Renyi random. When `allow_empty` is false the
// empty and zero-node cases are skipped (for suites that need a target node).
inline GraphSpec GenGraphSpec(util::Rng& rng, int min_nodes, int max_nodes,
                              bool allow_empty = true) {
  GraphSpec spec;
  const int family = rng.UniformInt(allow_empty ? 7 : 6);
  const int n = min_nodes + rng.UniformInt(max_nodes - min_nodes + 1);
  spec.num_nodes = n;
  auto add_undirected = [&spec](int u, int v) {
    spec.edges.emplace_back(u, v);
    spec.edges.emplace_back(v, u);
  };
  switch (family) {
    case 0:  // edgeless: layer edges are self-loops only
      spec.kind = "edgeless";
      break;
    case 1:  // star around a random hub
      spec.kind = "star";
      if (n >= 2) {
        const int hub = rng.UniformInt(n);
        for (int v = 0; v < n; ++v) {
          if (v != hub) add_undirected(hub, v);
        }
      }
      break;
    case 2:  // path
      spec.kind = "path";
      for (int v = 0; v + 1 < n; ++v) add_undirected(v, v + 1);
      break;
    case 3:  // dense: complete directed graph
      spec.kind = "dense";
      for (int u = 0; u < n; ++u) {
        for (int v = 0; v < n; ++v) {
          if (u != v) spec.edges.emplace_back(u, v);
        }
      }
      break;
    case 4: {  // disconnected: two dense-ish halves with no cross edges
      spec.kind = "disconnected";
      const int half = n / 2;
      for (int u = 0; u < n; ++u) {
        for (int v = 0; v < n; ++v) {
          if (u == v) continue;
          const bool same_side = (u < half) == (v < half);
          if (same_side && rng.Bernoulli(0.6)) spec.edges.emplace_back(u, v);
        }
      }
      break;
    }
    case 5: {  // Erdos-Renyi directed
      spec.kind = "random";
      for (int u = 0; u < n; ++u) {
        for (int v = 0; v < n; ++v) {
          if (u != v && rng.Bernoulli(0.25)) spec.edges.emplace_back(u, v);
        }
      }
      break;
    }
    default:  // empty graph: zero nodes, zero edges
      spec.kind = "empty";
      spec.num_nodes = 0;
      break;
  }
  return spec;
}

// Structural shrinks: drop one edge, or drop the highest-numbered node
// (with its incident edges). Ordered so the smallest candidates come first.
inline std::vector<GraphSpec> ShrinkGraphSpec(const GraphSpec& spec) {
  std::vector<GraphSpec> out;
  if (spec.num_nodes > 0) {
    GraphSpec smaller = spec;
    smaller.kind = "shrunk";
    smaller.num_nodes = spec.num_nodes - 1;
    smaller.edges.clear();
    for (const auto& e : spec.edges) {
      if (e.first < smaller.num_nodes && e.second < smaller.num_nodes) smaller.edges.push_back(e);
    }
    out.push_back(std::move(smaller));
  }
  for (size_t i = 0; i < spec.edges.size(); ++i) {
    GraphSpec fewer = spec;
    fewer.kind = "shrunk";
    fewer.edges.erase(fewer.edges.begin() + static_cast<long>(i));
    out.push_back(std::move(fewer));
  }
  return out;
}

inline util::Domain<GraphSpec> GraphDomain(int min_nodes, int max_nodes,
                                           bool allow_empty = true) {
  util::Domain<GraphSpec> domain;
  domain.generate = [min_nodes, max_nodes, allow_empty](util::Rng& rng) {
    return GenGraphSpec(rng, min_nodes, max_nodes, allow_empty);
  };
  domain.shrink = ShrinkGraphSpec;
  domain.describe = DescribeGraphSpec;
  return domain;
}

// ---------------------------------------------------------------------------
// Op harness registry
// ---------------------------------------------------------------------------

// One concrete (op, shape) instance. Shapes and index arguments are fixed at
// construction; `make_inputs` draws only the float values, so the same case
// can be re-run with fresh values per property case or per thread count.
struct OpCase {
  std::string op;       // name in tensor::RegisteredOpNames()
  std::string variant;  // human-readable shape tag, e.g. "5x4" or "0x3"
  bool fd_checkable = true;  // included in the finite-difference suite
  std::function<std::vector<Tensor>(util::Rng&)> make_inputs;
  std::function<Tensor(const std::vector<Tensor>&)> forward;
};

// Builds the full case list. Index arguments (gather/scatter/segment ids,
// NllLoss targets) are drawn from `seed`. When `include_large` is true, adds
// large-shape instances (fd_checkable = false) sized past the kernels'
// parallelization grains so the thread-differential suite actually exercises
// multi-chunk ParallelFor dispatch.
std::vector<OpCase> MakeOpCases(uint64_t seed, bool include_large);

// Runs `c` end to end at deterministic values: builds inputs from
// `value_seed`, runs forward, reduces with a fixed-weight Sum(Mul(y, W))
// loss, backpropagates, and returns forward values followed by every input
// gradient. Used for bitwise cross-thread comparison.
std::vector<float> RunOpCaseBitstream(const OpCase& c, uint64_t value_seed);

// Max relative FD-vs-autograd gradient error for `c` at values drawn from
// `value_seed` (relative to max(1, |analytic|, |numeric|)). Appends a
// description of the worst entry to `detail` when non-null.
double OpCaseMaxGradError(const OpCase& c, uint64_t value_seed, std::string* detail);

}  // namespace revelio::proptest

#endif  // REVELIO_TESTS_PROP_PROP_UTIL_H_
