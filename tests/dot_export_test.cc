// Tests for the Graphviz export of explanation results.

#include "graph/dot_export.h"

#include <fstream>

#include <gtest/gtest.h>

namespace revelio::graph {
namespace {

Graph TriangleWithTail() {
  Graph g(4);
  g.AddUndirectedEdge(0, 1);  // edges 0, 1
  g.AddUndirectedEdge(1, 2);  // edges 2, 3
  g.AddUndirectedEdge(0, 2);  // edges 4, 5
  g.AddEdge(3, 0);            // edge 6 (one-directional tail)
  return g;
}

TEST(DotExportTest, MergedUndirectedRendering) {
  Graph g = TriangleWithTail();
  DotStyle style;
  style.edge_selected.assign(g.num_edges(), 0);
  style.edge_selected[0] = 1;  // 0 -> 1 selected; its pair must merge
  style.target_node = 2;
  const std::string dot = ToDot(g, style);
  EXPECT_NE(dot.find("graph explanation {"), std::string::npos);
  // Each undirected pair appears once.
  EXPECT_EQ(dot.find("1 -- 0"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  // Selection via either direction renders bold.
  const size_t edge_pos = dot.find("0 -- 1");
  EXPECT_NE(dot.find("penwidth=2.2", edge_pos), std::string::npos);
  // Target is highlighted.
  EXPECT_NE(dot.find("2 [style=filled, fillcolor=\"#d62728\""), std::string::npos);
}

TEST(DotExportTest, DirectedRenderingKeepsBothArcs) {
  Graph g = TriangleWithTail();
  DotStyle style;
  style.merge_directed_pairs = false;
  const std::string dot = ToDot(g, style);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("0 -> 1"), std::string::npos);
  EXPECT_NE(dot.find("1 -> 0"), std::string::npos);
  EXPECT_NE(dot.find("3 -> 0"), std::string::npos);
}

TEST(DotExportTest, MissedGroundTruthIsDashedRed) {
  Graph g = TriangleWithTail();
  DotStyle style;
  style.edge_selected.assign(g.num_edges(), 0);
  style.edge_ground_truth.assign(g.num_edges(), 0);
  style.edge_ground_truth[2] = 1;  // 1 -> 2 is true but unselected
  const std::string dot = ToDot(g, style);
  const size_t edge_pos = dot.find("1 -- 2");
  ASSERT_NE(edge_pos, std::string::npos);
  EXPECT_NE(dot.find("style=dashed", edge_pos), std::string::npos);
}

TEST(DotExportTest, MotifNodesColored) {
  Graph g = TriangleWithTail();
  DotStyle style;
  style.node_in_motif.assign(4, 0);
  style.node_in_motif[1] = 1;
  const std::string dot = ToDot(g, style);
  EXPECT_NE(dot.find("1 [style=filled, fillcolor=\"#ffdd57\"]"), std::string::npos);
}

TEST(DotExportTest, WriteDotFileRoundTrip) {
  Graph g = TriangleWithTail();
  DotStyle style;
  const std::string path = ::testing::TempDir() + "/revelio_fig6.dot";
  ASSERT_TRUE(WriteDotFile(path, g, style).ok());
  std::ifstream in(path);
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line, "graph explanation {");
  EXPECT_FALSE(WriteDotFile("/nonexistent_dir_xyz/file.dot", g, style).ok());
}

}  // namespace
}  // namespace revelio::graph
