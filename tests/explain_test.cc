// Unit tests for every baseline explainer: output contracts, determinism,
// counterfactual score conventions, and architecture support flags.

#include <cmath>

#include <gtest/gtest.h>

#include "explain/deeplift.h"
#include "explain/flowx.h"
#include "explain/gnnexplainer.h"
#include "explain/gnnlrp.h"
#include "explain/gradcam.h"
#include "explain/graphmask.h"
#include "explain/pgexplainer.h"
#include "explain/pgm_explainer.h"
#include "explain/random_explainer.h"
#include "explain/subgraphx.h"
#include "flow/message_flow.h"
#include "gnn/trainer.h"
#include "graph/subgraph.h"
#include "nn/loss.h"

namespace revelio::explain {
namespace {

// Shared fixture: a trained two-community GCN node classifier plus a few
// computation-subgraph tasks.
class ExplainerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    state_ = new State();
    auto& s = *state_;
    s.graph = graph::Graph(16);
    for (int i = 0; i < 8; ++i) s.graph.AddUndirectedEdge(i, (i + 1) % 8);
    for (int i = 8; i < 16; ++i) s.graph.AddUndirectedEdge(i, 8 + (i + 1 - 8) % 8);
    s.graph.AddUndirectedEdge(0, 8);
    s.graph.AddUndirectedEdge(3, 12);
    s.features = tensor::Tensor::Zeros(16, 4);
    util::Rng feature_rng(21);
    for (int v = 0; v < 16; ++v) {
      s.labels.push_back(v < 8 ? 0 : 1);
      s.features.SetAt(v, s.labels[v], 1.0f);
      s.features.SetAt(v, 2, static_cast<float>(feature_rng.Uniform()));
    }
    gnn::GnnConfig config;
    config.arch = gnn::GnnArch::kGcn;
    config.input_dim = 4;
    config.hidden_dim = 8;
    config.num_classes = 2;
    s.model = std::make_unique<gnn::GnnModel>(config);
    util::Rng rng(5);
    gnn::Split split = gnn::MakeSplit(16, 0.8, 0.1, &rng);
    gnn::TrainConfig train_config;
    train_config.epochs = 60;
    gnn::TrainNodeModel(s.model.get(), s.graph, s.features, s.labels, split, train_config);

    for (int target : {2, 10}) {
      graph::Subgraph sub = graph::ExtractKHopInSubgraph(s.graph, target, 3);
      State::Instance instance;
      instance.graph = std::move(sub.graph);
      instance.features = graph::SliceRows(s.features, sub.node_map);
      instance.target = sub.target_local;
      s.instances.push_back(std::move(instance));
    }
  }
  static void TearDownTestSuite() {
    delete state_;
    state_ = nullptr;
  }

  ExplanationTask MakeTask(int index) const {
    auto& s = *state_;
    ExplanationTask task;
    task.model = s.model.get();
    task.graph = &s.instances[index].graph;
    task.features = s.instances[index].features;
    task.target_node = s.instances[index].target;
    task.target_class = PredictedClass(task);
    return task;
  }

  struct State {
    graph::Graph graph;
    tensor::Tensor features;
    std::vector<int> labels;
    std::unique_ptr<gnn::GnnModel> model;
    struct Instance {
      graph::Graph graph;
      tensor::Tensor features;
      int target = 0;
    };
    std::vector<Instance> instances;
  };
  static State* state_;
};

ExplainerFixture::State* ExplainerFixture::state_ = nullptr;

// --- Contract sweep over all per-instance methods ------------------------------

std::unique_ptr<Explainer> MakeByIndex(int index) {
  switch (index) {
    case 0:
      return std::make_unique<GradCamExplainer>();
    case 1:
      return std::make_unique<DeepLiftExplainer>();
    case 2: {
      GnnExplainerOptions options;
      options.epochs = 20;
      return std::make_unique<GnnExplainerMethod>(options);
    }
    case 3: {
      PgmExplainerOptions options;
      options.num_rounds = 30;
      return std::make_unique<PgmExplainer>(options);
    }
    case 4: {
      SubgraphXOptions options;
      options.mcts_iterations = 5;
      options.shapley_samples = 3;
      return std::make_unique<SubgraphXExplainer>(options);
    }
    case 5:
      return std::make_unique<GnnLrpExplainer>(GnnLrpOptions{});
    case 6: {
      FlowXOptions options;
      options.shapley_iterations = 2;
      options.learning_epochs = 15;
      return std::make_unique<FlowXExplainer>(options);
    }
    case 7:
      return std::make_unique<RandomExplainer>(3);
  }
  return nullptr;
}

class ExplainerContract : public ExplainerFixture,
                          public ::testing::WithParamInterface<int> {};

TEST_P(ExplainerContract, ProducesScoresForEveryEdgeDeterministically) {
  const ExplanationTask task = MakeTask(0);
  auto explainer = MakeByIndex(GetParam());
  const Explanation first = explainer->Explain(task, Objective::kFactual);
  EXPECT_EQ(static_cast<int>(first.edge_scores.size()), task.graph->num_edges());
  auto explainer_again = MakeByIndex(GetParam());
  const Explanation second = explainer_again->Explain(task, Objective::kFactual);
  ASSERT_EQ(first.edge_scores.size(), second.edge_scores.size());
  for (size_t e = 0; e < first.edge_scores.size(); ++e) {
    EXPECT_NEAR(first.edge_scores[e], second.edge_scores[e], 1e-6)
        << "explainers must be deterministic per seed";
  }
}

TEST_P(ExplainerContract, CounterfactualAlsoProducesFullScores) {
  const ExplanationTask task = MakeTask(1);
  auto explainer = MakeByIndex(GetParam());
  const Explanation result = explainer->Explain(task, Objective::kCounterfactual);
  EXPECT_EQ(static_cast<int>(result.edge_scores.size()), task.graph->num_edges());
}

INSTANTIATE_TEST_SUITE_P(Methods, ExplainerContract, ::testing::Range(0, 8));

// --- Method-specific behavior ----------------------------------------------------

TEST_F(ExplainerFixture, GradCamScoresAreNonNegative) {
  const ExplanationTask task = MakeTask(0);
  GradCamExplainer explainer;
  for (double s : explainer.Explain(task, Objective::kFactual).edge_scores) {
    EXPECT_GE(s, 0.0);
  }
}

TEST_F(ExplainerFixture, DeepLiftProducesSomeNonZeroContribution) {
  const ExplanationTask task = MakeTask(0);
  DeepLiftExplainer explainer;
  const auto scores = explainer.Explain(task, Objective::kFactual).edge_scores;
  double total_magnitude = 0.0;
  for (double s : scores) total_magnitude += std::fabs(s);
  EXPECT_GT(total_magnitude, 1e-6);
}

TEST_F(ExplainerFixture, GnnExplainerMasksStayInUnitInterval) {
  const ExplanationTask task = MakeTask(0);
  GnnExplainerOptions options;
  options.epochs = 25;
  GnnExplainerMethod explainer(options);
  for (Objective objective : {Objective::kFactual, Objective::kCounterfactual}) {
    for (double s : explainer.Explain(task, objective).edge_scores) {
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST_F(ExplainerFixture, PgExplainerRequiresTrainingThenExplains) {
  PgExplainerOptions options;
  options.train_epochs = 4;
  PgExplainer explainer(options);
  EXPECT_FALSE(explainer.is_trained(Objective::kFactual));
  std::vector<ExplanationTask> tasks = {MakeTask(0), MakeTask(1)};
  explainer.Train(tasks, Objective::kFactual);
  EXPECT_TRUE(explainer.is_trained(Objective::kFactual));
  EXPECT_FALSE(explainer.is_trained(Objective::kCounterfactual));
  EXPECT_GT(explainer.last_train_seconds(Objective::kFactual), 0.0);
  const Explanation result = explainer.Explain(tasks[0], Objective::kFactual);
  EXPECT_EQ(static_cast<int>(result.edge_scores.size()), tasks[0].graph->num_edges());
}

TEST_F(ExplainerFixture, GraphMaskTrainsPerObjective) {
  GraphMaskOptions options;
  options.train_epochs = 3;
  GraphMaskExplainer explainer(options);
  std::vector<ExplanationTask> tasks = {MakeTask(0)};
  explainer.Train(tasks, Objective::kCounterfactual);
  EXPECT_TRUE(explainer.is_trained(Objective::kCounterfactual));
  const Explanation result = explainer.Explain(tasks[0], Objective::kCounterfactual);
  for (double s : result.edge_scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(ExplainerFixture, GnnLrpRejectsGatAndScoresFlows) {
  GnnLrpExplainer explainer{GnnLrpOptions{}};
  EXPECT_TRUE(explainer.SupportsArch(gnn::GnnArch::kGcn));
  EXPECT_TRUE(explainer.SupportsArch(gnn::GnnArch::kGin));
  EXPECT_FALSE(explainer.SupportsArch(gnn::GnnArch::kGat));

  const ExplanationTask task = MakeTask(0);
  const Explanation result = explainer.Explain(task, Objective::kFactual);
  EXPECT_TRUE(result.has_flow_scores);
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);
  const int64_t flows = flow::CountFlowsToTarget(edges, task.target_node, 3);
  EXPECT_EQ(static_cast<int64_t>(result.flow_scores.size()), flows);
}

TEST(GnnLrpProperty, WalkRelevancesConserveTheLogit) {
  // LRP's defining conservation property: summed over ALL walks ending at
  // the target, the relevances reconstruct the explained logit (epsilon-LRP
  // with logit-normalized initialization). Holds for GCN and GIN.
  graph::Graph g(5);
  g.AddUndirectedEdge(0, 1);
  g.AddUndirectedEdge(1, 2);
  g.AddUndirectedEdge(2, 3);
  g.AddUndirectedEdge(3, 4);
  g.AddUndirectedEdge(0, 2);
  util::Rng rng(9);
  const tensor::Tensor features = tensor::Tensor::Randn(5, 4, &rng);
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(g);
  const flow::FlowSet flows = flow::EnumerateFlowsToTarget(edges, 2, 3);

  for (auto arch : {gnn::GnnArch::kGcn, gnn::GnnArch::kGin}) {
    gnn::GnnConfig config;
    config.arch = arch;
    config.input_dim = 4;
    config.hidden_dim = 8;
    config.num_classes = 3;
    config.seed = 5;
    gnn::GnnModel model(config);
    ExplanationTask task;
    task.model = &model;
    task.graph = &g;
    task.features = features;
    task.target_node = 2;
    task.target_class = 1;
    GnnLrpExplainer lrp{GnnLrpOptions{}};
    const auto scores = lrp.ScoreFlows(task, edges, flows);
    double total = 0.0;
    for (double s : scores) total += s;
    const double logit = model.Logits(g, features).At(2, 1);
    EXPECT_NEAR(total, logit, 1e-3 + 1e-3 * std::fabs(logit))
        << "arch " << gnn::GnnArchName(arch);
  }
}

TEST_F(ExplainerFixture, FlowXProducesFlowScoresAndShapleyStageSumsToDrop) {
  const ExplanationTask task = MakeTask(0);
  FlowXOptions options;
  options.shapley_iterations = 2;
  options.learning_epochs = 5;
  FlowXExplainer explainer(options);
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(*task.graph);
  flow::FlowSet flows = flow::EnumerateFlowsToTarget(edges, task.target_node, 3);
  const auto stage1 = explainer.SampleShapleyScores(task, edges, flows);
  EXPECT_EQ(static_cast<int>(stage1.size()), flows.num_flows());
  // Efficiency property of sampled Shapley: total score equals the mean
  // total prediction drop from full graph to empty graph, which equals
  // P(full) - P(no base edges). Flows on pure self-loop paths are never
  // killed, so compare totals loosely: non-trivial total magnitude.
  double total = 0.0;
  for (double s : stage1) total += s;
  std::vector<char> kept_none(edges.num_base_edges, 0);
  // Full-vs-empty drop must be reflected in total flow scores direction.
  const Explanation result = explainer.Explain(task, Objective::kFactual);
  EXPECT_TRUE(result.has_flow_scores);
  EXPECT_EQ(static_cast<int>(result.flow_scores.size()), flows.num_flows());
  for (double s : result.flow_scores) {
    EXPECT_GE(s, -1.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(ExplainerFixture, SubgraphXKeepsTargetAndScoresEdges) {
  const ExplanationTask task = MakeTask(0);
  SubgraphXOptions options;
  options.mcts_iterations = 6;
  options.shapley_samples = 2;
  SubgraphXExplainer explainer(options);
  const Explanation result = explainer.Explain(task, Objective::kFactual);
  // At least some edges must receive a nonzero reward signal.
  double magnitude = 0.0;
  for (double s : result.edge_scores) magnitude += std::fabs(s);
  EXPECT_GT(magnitude, 0.0);
}

TEST_F(ExplainerFixture, PgmExplainerIsBlackBox) {
  // PGM-Explainer only calls Logits (no gradients); its scores must still
  // cover all edges and be non-negative (chi-square based).
  const ExplanationTask task = MakeTask(0);
  PgmExplainerOptions options;
  options.num_rounds = 25;
  PgmExplainer explainer(options);
  const auto scores = explainer.Explain(task, Objective::kFactual).edge_scores;
  for (double s : scores) EXPECT_GE(s, 0.0);
}

}  // namespace
}  // namespace revelio::explain
