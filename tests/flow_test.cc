// Tests for message-flow enumeration, counting, incidence, pattern matching
// and flow/edge score translation (paper §III / Eq. 3).

#include "flow/message_flow.h"

#include <gtest/gtest.h>

#include "flow/flow_scores.h"

namespace revelio::flow {
namespace {

using gnn::BuildLayerEdges;
using gnn::LayerEdgeSet;
using graph::Graph;

// 0 -> 1 -> 2 directed path.
Graph PathGraph3() {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  return g;
}

TEST(FlowCountTest, PathGraphCountsMatchEnumeration) {
  Graph g = PathGraph3();
  LayerEdgeSet edges = BuildLayerEdges(g);
  for (int layers = 1; layers <= 4; ++layers) {
    const int64_t count = CountFlowsToTarget(edges, 2, layers);
    FlowSet flows = EnumerateFlowsToTarget(edges, 2, layers);
    EXPECT_EQ(count, flows.num_flows()) << "L = " << layers;
  }
}

TEST(FlowCountTest, SingleNodeHasOnlySelfLoopFlows) {
  Graph g(1);
  LayerEdgeSet edges = BuildLayerEdges(g);
  EXPECT_EQ(CountFlowsToTarget(edges, 0, 3), 1);
  FlowSet flows = EnumerateFlowsToTarget(edges, 0, 3);
  ASSERT_EQ(flows.num_flows(), 1);
  EXPECT_EQ(flows.FormatFlow(0, edges), "0->0->0->0");
}

TEST(FlowCountTest, CountAllEqualsSumOverTargets) {
  Graph g = PathGraph3();
  LayerEdgeSet edges = BuildLayerEdges(g);
  int64_t total = 0;
  for (int v = 0; v < 3; ++v) total += CountFlowsToTarget(edges, v, 2);
  EXPECT_EQ(CountAllFlows(edges, 2), total);
  FlowSet all = EnumerateAllFlows(edges, 2);
  EXPECT_EQ(all.num_flows(), total);
}

TEST(FlowCountTest, UpperBoundFromMaxInDegree) {
  // The paper's bound: |F| to one target <= (d_- + 1)^L with self-loops.
  Graph g(4);
  g.AddEdge(0, 3);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  LayerEdgeSet edges = BuildLayerEdges(g);
  const int64_t bound = 4 * 4 * 4;  // (d_- + 1)^3
  EXPECT_LE(CountFlowsToTarget(edges, 3, 3), bound);
}

TEST(FlowSetTest, FlowsEndAtTargetAndChain) {
  Graph g = PathGraph3();
  LayerEdgeSet edges = BuildLayerEdges(g);
  FlowSet flows = EnumerateFlowsToTarget(edges, 2, 2);
  // Walks of length 2 ending at 2 over {0->1,1->2,self-loops}:
  // 0->1->2, 1->1->2, 1->2->2, 2->2->2. (4 total)
  EXPECT_EQ(flows.num_flows(), 4);
  for (int k = 0; k < flows.num_flows(); ++k) {
    const auto nodes = flows.FlowNodes(k, edges);
    ASSERT_EQ(nodes.size(), 3u);
    EXPECT_EQ(nodes.back(), 2);
    // Consecutive layer edges chain: dst of step l == src of step l+1.
    EXPECT_EQ(edges.dst[flows.EdgeAt(0, k)], edges.src[flows.EdgeAt(1, k)]);
  }
}

TEST(FlowSetTest, ReverseIndexIsConsistent) {
  Graph g = PathGraph3();
  LayerEdgeSet edges = BuildLayerEdges(g);
  FlowSet flows = EnumerateFlowsToTarget(edges, 2, 3);
  // Every flow appears exactly once per layer across the reverse index.
  for (int l = 0; l < flows.num_layers(); ++l) {
    std::vector<int> seen(flows.num_flows(), 0);
    for (int e = 0; e < edges.num_layer_edges(); ++e) {
      for (int k : flows.FlowsOnEdge(l, e)) {
        EXPECT_EQ(flows.EdgeAt(l, k), e);
        seen[k] += 1;
      }
    }
    for (int count : seen) EXPECT_EQ(count, 1);
  }
}

TEST(FlowSetTest, UsedEdgesAreExactlyFlowCarriers) {
  Graph g = PathGraph3();
  LayerEdgeSet edges = BuildLayerEdges(g);
  FlowSet flows = EnumerateFlowsToTarget(edges, 2, 2);
  // Layer 2 (index 1): only edges entering node 2 carry flows.
  const auto used = flows.UsedEdgesAtLayer(1);
  for (int e : used) EXPECT_EQ(edges.dst[e], 2);
  // Edge 0->1 carries a flow at layer 1 but not layer 2.
  EXPECT_TRUE(flows.EdgeCarriesFlow(0, 0));
  EXPECT_FALSE(flows.EdgeCarriesFlow(1, 0));
}

TEST(FlowScoresTest, LayerEdgeScoresAreFlowSums) {
  Graph g = PathGraph3();
  LayerEdgeSet edges = BuildLayerEdges(g);
  FlowSet flows = EnumerateFlowsToTarget(edges, 2, 2);
  std::vector<double> scores(flows.num_flows());
  for (int k = 0; k < flows.num_flows(); ++k) scores[k] = k + 1.0;
  const auto layer_scores = FlowScoresToLayerEdgeScores(flows, scores);
  for (int l = 0; l < 2; ++l) {
    double total = 0.0;
    for (double v : layer_scores[l]) total += v;
    // Eq. 3 with summation: per-layer totals equal the sum of flow scores.
    EXPECT_NEAR(total, 1.0 + 2.0 + 3.0 + 4.0, 1e-9);
  }
}

TEST(FlowScoresTest, EdgeScoresAverageOverCarryingLayersOnly) {
  Graph g = PathGraph3();
  LayerEdgeSet edges = BuildLayerEdges(g);
  FlowSet flows = EnumerateFlowsToTarget(edges, 2, 2);
  std::vector<std::vector<double>> layer_scores(
      2, std::vector<double>(edges.num_layer_edges(), 0.0));
  layer_scores[0][0] = 4.0;  // edge 0->1 at layer 1 (carries flow 0->1->2)
  layer_scores[1][0] = 99.0; // same edge at layer 2 carries nothing: ignored
  const auto edge_scores = LayerEdgeScoresToEdgeScores(flows, edges, layer_scores);
  ASSERT_EQ(edge_scores.size(), 2u);
  EXPECT_NEAR(edge_scores[0], 4.0, 1e-9) << "only the carrying layer counts";
}

TEST(FlowScoresTest, TopKOrdersDescending) {
  const std::vector<double> scores = {0.1, 0.9, 0.5, 0.9};
  const auto top = TopKFlows(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1);  // ties broken by index
  EXPECT_EQ(top[1], 3);
  EXPECT_EQ(top[2], 2);
  EXPECT_EQ(TopKFlows(scores, 10).size(), 4u);
}

TEST(FlowPatternTest, ParseAndMatch) {
  Graph g = PathGraph3();
  LayerEdgeSet edges = BuildLayerEdges(g);
  FlowSet flows = EnumerateFlowsToTarget(edges, 2, 2);
  // F_{0*}: flows starting at node 0 — only 0->1->2.
  const auto from_zero = MatchFlows(flows, edges, "0 *");
  ASSERT_EQ(from_zero.size(), 1u);
  EXPECT_EQ(flows.FormatFlow(from_zero[0], edges), "0->1->2");
  // F_{*2}: all flows (all end at 2).
  EXPECT_EQ(MatchFlows(flows, edges, "* 2").size(), 4u);
  // F_{?{2}2}: exactly two arbitrary nodes then node 2 = all length-2 flows.
  EXPECT_EQ(MatchFlows(flows, edges, "?{2} 2").size(), 4u);
  // F_{1 1 2}: the specific flow 1->1->2.
  const auto specific = MatchFlows(flows, edges, "1 1 2");
  ASSERT_EQ(specific.size(), 1u);
  EXPECT_EQ(flows.FormatFlow(specific[0], edges), "1->1->2");
}

TEST(FlowPatternTest, AnySequenceMatchesEmpty) {
  Graph g(1);
  LayerEdgeSet edges = BuildLayerEdges(g);
  FlowSet flows = EnumerateFlowsToTarget(edges, 0, 1);
  EXPECT_EQ(MatchFlows(flows, edges, "* 0 0 *").size(), 1u);
  EXPECT_EQ(MatchFlows(flows, edges, "* 1 *").size(), 0u);
}

}  // namespace
}  // namespace revelio::flow
