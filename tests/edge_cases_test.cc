// Numerical and structural edge cases across modules: extreme inputs to the
// tensor ops, degenerate graphs, and graph-task fidelity behavior.

#include <cmath>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/runner.h"
#include "explain/explainer.h"
#include "flow/message_flow.h"
#include "gnn/trainer.h"
#include "nn/loss.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace revelio {
namespace {

using tensor::Tensor;

TEST(NumericalEdgeCases, SoftmaxSurvivesExtremeLogits) {
  Tensor logits = Tensor::FromData(2, 3, {1000.0f, 0.0f, -1000.0f, -1e30f, -1e30f, -1e30f});
  Tensor probs = tensor::RowSoftmax(logits);
  EXPECT_NEAR(probs.At(0, 0), 1.0f, 1e-5);
  EXPECT_NEAR(probs.At(0, 2), 0.0f, 1e-5);
  // Row of equal extreme values stays uniform, not NaN.
  for (int c = 0; c < 3; ++c) {
    EXPECT_FALSE(std::isnan(probs.At(1, c)));
    EXPECT_NEAR(probs.At(1, c), 1.0f / 3.0f, 1e-5);
  }
  Tensor log_probs = tensor::RowLogSoftmax(logits);
  EXPECT_FALSE(std::isnan(log_probs.At(0, 2)));
}

TEST(NumericalEdgeCases, LogOfZeroIsClamped) {
  Tensor p = Tensor::FromData(1, 1, {0.0f});
  EXPECT_TRUE(std::isfinite(tensor::Log(p).Value()));
}

TEST(NumericalEdgeCases, ObjectivesAtProbabilityExtremes) {
  // P(c) ~ 1: factual loss ~ 0, counterfactual loss large but finite.
  Tensor confident = Tensor::FromData(1, 2, {50.0f, -50.0f});
  EXPECT_NEAR(nn::FactualObjective(confident, 0, 0).Value(), 0.0f, 1e-4);
  EXPECT_TRUE(std::isfinite(nn::CounterfactualObjective(confident, 0, 0).Value()));
  EXPECT_GT(nn::CounterfactualObjective(confident, 0, 0).Value(), 5.0f);
}

TEST(NumericalEdgeCases, SoftplusLargeInputsLinear) {
  Tensor x = Tensor::FromData(1, 2, {80.0f, -80.0f});
  Tensor y = tensor::Softplus(x);
  EXPECT_NEAR(y.At(0, 0), 80.0f, 1e-3);
  EXPECT_NEAR(y.At(0, 1), 0.0f, 1e-3);
}

TEST(StructuralEdgeCases, SingleNodeGraphForward) {
  graph::Graph g(1);
  gnn::GnnConfig config;
  config.arch = gnn::GnnArch::kGcn;
  config.input_dim = 3;
  config.hidden_dim = 4;
  config.num_classes = 2;
  gnn::GnnModel model(config);
  util::Rng rng(3);
  Tensor logits = model.Logits(g, Tensor::Randn(1, 3, &rng));
  EXPECT_EQ(logits.rows(), 1);
  for (int c = 0; c < 2; ++c) EXPECT_TRUE(std::isfinite(logits.At(0, c)));
}

TEST(StructuralEdgeCases, EdgelessGraphStillHasSelfLoopFlows) {
  graph::Graph g(3);
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(g);
  EXPECT_EQ(edges.num_base_edges, 0);
  EXPECT_EQ(edges.num_layer_edges(), 3);
  EXPECT_EQ(flow::CountAllFlows(edges, 3), 3);
  flow::FlowSet flows = flow::EnumerateAllFlows(edges, 3);
  EXPECT_EQ(flows.num_flows(), 3);
}

TEST(StructuralEdgeCases, FlowEnumerationMaxFlowsGuard) {
  graph::Graph g(4);
  g.AddUndirectedEdge(0, 1);
  g.AddUndirectedEdge(1, 2);
  g.AddUndirectedEdge(2, 3);
  const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(g);
  const int64_t count = flow::CountFlowsToTarget(edges, 1, 3);
  EXPECT_DEATH(flow::EnumerateFlowsToTarget(edges, 1, 3, count - 1), "max_flows");
  // Exactly at the bound succeeds.
  EXPECT_EQ(flow::EnumerateFlowsToTarget(edges, 1, 3, count).num_flows(), count);
}

TEST(StructuralEdgeCases, GraphTaskFidelityUsesGraphProbability) {
  // A graph classifier whose prediction depends on edges: check that the
  // fidelity protocol moves the probability for graph tasks too.
  util::Rng rng(11);
  std::vector<graph::GraphInstance> instances;
  for (int i = 0; i < 40; ++i) {
    const int label = i % 2;
    graph::GraphInstance instance;
    instance.graph = graph::Graph(6);
    // Label 1: a 6-cycle; label 0: a path (same nodes, one fewer edge).
    for (int v = 0; v + 1 < 6; ++v) instance.graph.AddUndirectedEdge(v, v + 1);
    if (label == 1) instance.graph.AddUndirectedEdge(5, 0);
    instance.features = Tensor::Ones(6, 3);
    instance.labels = {label};
    instances.push_back(std::move(instance));
  }
  gnn::GnnConfig config;
  config.arch = gnn::GnnArch::kGin;
  config.task = gnn::TaskType::kGraphClassification;
  config.input_dim = 3;
  config.hidden_dim = 8;
  config.num_classes = 2;
  gnn::GnnModel model(config);
  gnn::Split split = gnn::MakeSplit(40, 0.7, 0.15, &rng);
  gnn::TrainConfig train_config;
  train_config.epochs = 120;
  const auto metrics = gnn::TrainGraphModel(&model, instances, split, train_config);
  ASSERT_GT(metrics.test_accuracy, 0.8) << "cycle-vs-path should be learnable";

  explain::ExplanationTask task;
  task.model = &model;
  task.graph = &instances[1].graph;  // a cycle instance
  task.features = instances[1].features;
  task.target_node = -1;
  task.target_class = explain::PredictedClass(task);

  // Removing the whole graph's edges must change the class probability.
  std::vector<int> all_edges(task.graph->num_edges());
  for (int e = 0; e < task.graph->num_edges(); ++e) all_edges[e] = e;
  const double with_edges = explain::PredictedProbability(task);
  const double without_edges = eval::ProbabilityWithoutEdges(task, all_edges);
  EXPECT_GT(std::fabs(with_edges - without_edges), 0.05);
}

TEST(StructuralEdgeCases, FidelityHandlesAllOrNothingSparsity) {
  graph::Graph g(4);
  g.AddUndirectedEdge(0, 1);
  g.AddUndirectedEdge(1, 2);
  g.AddUndirectedEdge(2, 3);
  gnn::GnnConfig config;
  config.arch = gnn::GnnArch::kGcn;
  config.input_dim = 2;
  config.hidden_dim = 4;
  config.num_classes = 2;
  gnn::GnnModel model(config);
  util::Rng rng(5);
  explain::ExplanationTask task;
  task.model = &model;
  task.graph = &g;
  task.features = Tensor::Randn(4, 2, &rng);
  task.target_node = 1;
  task.target_class = 0;
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.6, 0.5, 0.4};
  // Fidelity- at sparsity 0 keeps everything (no drop); at sparsity 1 it
  // removes every edge but must stay finite. Fidelity+ removes the
  // explanatory set, which is empty at sparsity 1 (no drop) and the whole
  // graph at sparsity 0.
  EXPECT_NEAR(eval::FidelityMinus(task, scores, 0.0), 0.0, 1e-6);
  EXPECT_TRUE(std::isfinite(eval::FidelityMinus(task, scores, 1.0)));
  EXPECT_NEAR(eval::FidelityPlus(task, scores, 1.0), 0.0, 1e-6);
  EXPECT_NEAR(eval::FidelityPlus(task, scores, 0.0),
              eval::FidelityMinus(task, scores, 1.0), 1e-6)
      << "removing all edges is the same subgraph under both protocols";
}

TEST(StructuralEdgeCases, ExplainAllSurvivesAnInvalidTaskMidBatch) {
  // A task that fails validation must not abort the whole batch: its slot
  // carries the error (empty scores) and every valid neighbor still produces
  // the same bits as explaining it alone.
  const int n = 6;
  graph::Graph graph(n);
  for (int v = 0; v < n; ++v) graph.AddUndirectedEdge(v, (v + 1) % n);
  util::Rng rng(11);
  Tensor features = Tensor::Uniform(n, 3, -1.0f, 1.0f, &rng);

  gnn::GnnConfig config;
  config.arch = gnn::GnnArch::kGcn;
  config.input_dim = 3;
  config.hidden_dim = 4;
  config.num_classes = 2;
  config.num_layers = 2;
  gnn::GnnModel model(config);
  model.Freeze();

  auto make_task = [&](int target_node) {
    explain::ExplanationTask task;
    task.model = &model;
    task.graph = &graph;
    task.features = features;
    task.target_node = target_node;
    task.target_class = 0;
    return task;
  };
  std::vector<explain::ExplanationTask> tasks{make_task(0), make_task(99), make_task(3)};

  eval::RunnerConfig runner_config;
  runner_config.explainer_epochs = 4;
  std::unique_ptr<explain::Explainer> explainer = eval::MakeExplainer("Revelio", runner_config);
  std::vector<explain::Explanation> batch =
      eval::ExplainAll(explainer.get(), tasks, explain::Objective::kFactual);

  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[1].status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(batch[1].edge_scores.empty());
  EXPECT_TRUE(batch[0].status.ok());
  EXPECT_TRUE(batch[2].status.ok());

  std::unique_ptr<explain::Explainer> solo = eval::MakeExplainer("Revelio", runner_config);
  explain::Explanation alone0 = solo->Explain(tasks[0], explain::Objective::kFactual);
  explain::Explanation alone2 = solo->Explain(tasks[2], explain::Objective::kFactual);
  EXPECT_EQ(batch[0].edge_scores, alone0.edge_scores);
  EXPECT_EQ(batch[2].edge_scores, alone2.edge_scores);
}

}  // namespace
}  // namespace revelio
