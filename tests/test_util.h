#ifndef REVELIO_TESTS_TEST_UTIL_H_
#define REVELIO_TESTS_TEST_UTIL_H_

// Shared helpers for the Revelio test suites, most importantly the
// finite-difference gradient checker that validates every autograd op.

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace revelio::testing {

// Checks d(loss)/d(input) against central finite differences for every
// entry of `input`. `forward` must map the (mutated) input to a scalar
// tensor. Returns the max absolute deviation for diagnostics.
inline void CheckGradient(tensor::Tensor input,
                          const std::function<tensor::Tensor(const tensor::Tensor&)>& forward,
                          float epsilon = 1e-3f, float tolerance = 2e-2f) {
  input.ZeroGrad();  // a prior check on the same tensor may have accumulated
  tensor::Tensor loss = forward(input);
  ASSERT_TRUE(loss.is_scalar());
  loss.Backward();
  std::vector<float> analytic(input.numel());
  for (int r = 0; r < input.rows(); ++r) {
    for (int c = 0; c < input.cols(); ++c) {
      analytic[static_cast<size_t>(r) * input.cols() + c] = input.GradAt(r, c);
    }
  }
  for (int r = 0; r < input.rows(); ++r) {
    for (int c = 0; c < input.cols(); ++c) {
      const float original = input.At(r, c);
      input.SetAt(r, c, original + epsilon);
      const float plus = forward(input).Value();
      input.SetAt(r, c, original - epsilon);
      const float minus = forward(input).Value();
      input.SetAt(r, c, original);
      const float numeric = (plus - minus) / (2.0f * epsilon);
      const float got = analytic[static_cast<size_t>(r) * input.cols() + c];
      EXPECT_NEAR(got, numeric, tolerance + tolerance * std::fabs(numeric))
          << "gradient mismatch at (" << r << "," << c << ")";
    }
  }
}

}  // namespace revelio::testing

#endif  // REVELIO_TESTS_TEST_UTIL_H_
