// Unit tests for the recorded-execution-plan subsystem (src/plan): tape
// recording, plan compilation (fusion, levels, arena), PlanSession replay
// semantics (key mismatch, global version bump, zero pool traffic), and the
// plan.* observability counters. The whole-loop differential proof lives in
// tests/prop/plan_equivalence_test.cc; these tests pin the mechanism.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "plan/arena.h"
#include "plan/plan.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/record.h"
#include "tensor/tensor.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace revelio {
namespace {

using tensor::Tensor;

uint64_t CounterTotal(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Total();
}

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    util::SetNumThreads(1);
    tensor::SetPoolEnabled(true);
    plan::SetPlanFuseEnabled(true);
  }
  void TearDown() override {
    obs::SetEnabled(false);
    util::SetNumThreads(1);
    tensor::SetPoolEnabled(true);
    plan::SetExecPlanEnabled(true);
    plan::SetPlanFuseEnabled(true);
  }
};

// x -> AddScalar -> Tanh -> MulScalar -> Sum: three same-extent elementwise
// ops (fusable run) feeding a reduction.
Tensor BuildChain(const Tensor& x) {
  return tensor::Sum(tensor::MulScalar(tensor::Tanh(tensor::AddScalar(x, 0.5f)), 2.0f));
}

TEST_F(PlanTest, RecordScopeCapturesOpsAndSealCompiles) {
  util::Rng rng(1);
  Tensor x = Tensor::Uniform(4, 3, -1.0f, 1.0f, &rng).WithRequiresGrad();
  plan::PlanSession session;
  Tensor loss;
  {
    plan::PlanSession::RecordScope record(&session);
    EXPECT_TRUE(tensor::rec::Recording());
    loss = BuildChain(x);
  }
  EXPECT_FALSE(tensor::rec::Recording());
  ASSERT_EQ(session.tape().ops.size(), 4u);  // AddScalar, Tanh, MulScalar, Sum
  loss.Backward();

  const uint64_t records_before = CounterTotal("plan.records");
  session.Seal(loss, plan::PlanKey{{7}});
  ASSERT_TRUE(session.sealed());
  EXPECT_EQ(CounterTotal("plan.records"), records_before + 1);

  const plan::Plan* plan = session.plan();
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->num_ops(), 4);
  // The three elementwise ops fuse into one step; Sum stays on its own.
  ASSERT_EQ(plan->steps().size(), 2u);
  EXPECT_TRUE(plan->steps()[0].fused);
  EXPECT_EQ(plan->steps()[0].op_indices.size(), 3u);
  EXPECT_EQ(plan->fused_ops(), 3);
  EXPECT_TRUE(plan::ValidateMemoryPlan(plan->memory()));
  EXPECT_EQ(plan->memory().slots.size(), 4u);
}

TEST_F(PlanTest, FusionDisabledKeepsOpsAsSingletonSteps) {
  plan::SetPlanFuseEnabled(false);
  util::Rng rng(2);
  Tensor x = Tensor::Uniform(4, 3, -1.0f, 1.0f, &rng).WithRequiresGrad();
  plan::PlanSession session;
  Tensor loss;
  {
    plan::PlanSession::RecordScope record(&session);
    loss = BuildChain(x);
  }
  loss.Backward();
  session.Seal(loss, plan::PlanKey{{7}});
  ASSERT_TRUE(session.sealed());
  EXPECT_EQ(session.plan()->steps().size(), 4u);
  EXPECT_EQ(session.plan()->fused_ops(), 0);
  for (const plan::PlanStep& step : session.plan()->steps()) EXPECT_FALSE(step.fused);
}

TEST_F(PlanTest, ReplayRecomputesValuesAndGradsInPlace) {
  util::Rng rng(3);
  Tensor x = Tensor::Uniform(5, 2, -1.0f, 1.0f, &rng).WithRequiresGrad();
  plan::PlanSession session;
  Tensor loss;
  {
    plan::PlanSession::RecordScope record(&session);
    loss = BuildChain(x);
  }
  loss.Backward();
  session.Seal(loss, plan::PlanKey{{1}});

  // Mutate the leaf, replay, and compare against a fresh eager rebuild.
  for (float& v : *x.mutable_values()) v *= 0.75f;
  x.ZeroGrad();
  const uint64_t replays_before = CounterTotal("plan.replays");
  ASSERT_TRUE(session.Replay(plan::PlanKey{{1}}));
  EXPECT_EQ(CounterTotal("plan.replays"), replays_before + 1);

  Tensor ref = Tensor::FromData(x.rows(), x.cols(), x.values()).WithRequiresGrad();
  Tensor ref_loss = BuildChain(ref);
  ref_loss.Backward();
  EXPECT_EQ(loss.values(), ref_loss.values());
  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.cols(); ++c) EXPECT_EQ(x.GradAt(r, c), ref.GradAt(r, c));
  }
  ref_loss.ReleaseTape();
}

TEST_F(PlanTest, ReplayPerformsZeroPoolAcquisitions) {
  util::Rng rng(4);
  Tensor x = Tensor::Uniform(8, 4, -1.0f, 1.0f, &rng).WithRequiresGrad();
  plan::PlanSession session;
  Tensor loss;
  {
    plan::PlanSession::RecordScope record(&session);
    loss = BuildChain(x);
  }
  loss.Backward();
  session.Seal(loss, plan::PlanKey{{1}});

  tensor::TensorPool* pool = tensor::TensorPool::ThreadLocal();
  ASSERT_NE(pool, nullptr);
  const uint64_t acquires_before = pool->stats().hits + pool->stats().misses;
  for (int i = 0; i < 5; ++i) {
    x.ZeroGrad();
    ASSERT_TRUE(session.Replay(plan::PlanKey{{1}}));
  }
  EXPECT_EQ(pool->stats().hits + pool->stats().misses, acquires_before)
      << "replay must not touch the tensor pool";
}

TEST_F(PlanTest, KeyMismatchInvalidatesAndForcesReRecord) {
  util::Rng rng(5);
  Tensor x = Tensor::Uniform(3, 3, -1.0f, 1.0f, &rng).WithRequiresGrad();
  plan::PlanSession session;
  Tensor loss;
  {
    plan::PlanSession::RecordScope record(&session);
    loss = BuildChain(x);
  }
  loss.Backward();
  session.Seal(loss, plan::PlanKey{{1, 2}});
  ASSERT_TRUE(session.Replay(plan::PlanKey{{1, 2}}));

  const uint64_t invalidations_before = CounterTotal("plan.invalidations");
  EXPECT_FALSE(session.Replay(plan::PlanKey{{1, 3}}));
  EXPECT_FALSE(session.sealed());
  EXPECT_EQ(CounterTotal("plan.invalidations"), invalidations_before + 1);
  // A fresh record/seal under the new key brings the session back.
  {
    plan::PlanSession::RecordScope record(&session);
    loss = BuildChain(x);
  }
  loss.Backward();
  session.Seal(loss, plan::PlanKey{{1, 3}});
  EXPECT_TRUE(session.Replay(plan::PlanKey{{1, 3}}));
}

TEST_F(PlanTest, GlobalVersionBumpInvalidatesSealedPlans) {
  util::Rng rng(6);
  Tensor x = Tensor::Uniform(3, 3, -1.0f, 1.0f, &rng).WithRequiresGrad();
  plan::PlanSession session;
  Tensor loss;
  {
    plan::PlanSession::RecordScope record(&session);
    loss = BuildChain(x);
  }
  loss.Backward();
  session.Seal(loss, plan::PlanKey{{1}});
  ASSERT_TRUE(session.Replay(plan::PlanKey{{1}}));

  plan::BumpGlobalPlanVersion();
  EXPECT_FALSE(session.Replay(plan::PlanKey{{1}}));
  EXPECT_FALSE(session.sealed());
}

TEST_F(PlanTest, ReplayOnUnsealedSessionReturnsFalse) {
  plan::PlanSession session;
  EXPECT_FALSE(session.Replay(plan::PlanKey{{1}}));
  EXPECT_FALSE(session.sealed());
}

TEST_F(PlanTest, NullRecordScopeIsANoOp) {
  {
    plan::PlanSession::RecordScope record(nullptr);
    EXPECT_FALSE(tensor::rec::Recording());
    Tensor x = Tensor::Zeros(2, 2).WithRequiresGrad();
    Tensor loss = BuildChain(x);
    loss.ReleaseTape();
  }
  EXPECT_FALSE(tensor::rec::Recording());
}

TEST_F(PlanTest, EnvTogglesRoundTrip) {
  plan::SetExecPlanEnabled(false);
  EXPECT_FALSE(plan::ExecPlanEnabled());
  plan::SetExecPlanEnabled(true);
  EXPECT_TRUE(plan::ExecPlanEnabled());
  plan::SetPlanFuseEnabled(false);
  EXPECT_FALSE(plan::PlanFuseEnabled());
  plan::SetPlanFuseEnabled(true);
  EXPECT_TRUE(plan::PlanFuseEnabled());
}

TEST_F(PlanTest, MemoryPlanReusesArenaBytesAcrossDisjointLifetimes) {
  // a -> b -> c -> d sequential chain: b's slot dies when c is produced, so
  // first-fit can reuse its bytes; the arena extent must be below the naive
  // sum of all outputs.
  util::Rng rng(8);
  Tensor x = Tensor::Uniform(16, 16, -1.0f, 1.0f, &rng).WithRequiresGrad();
  plan::PlanSession session;
  Tensor loss;
  {
    plan::PlanSession::RecordScope record(&session);
    Tensor h = tensor::Tanh(x);
    for (int i = 0; i < 4; ++i) h = tensor::Tanh(h);
    loss = tensor::Sum(h);
  }
  loss.Backward();
  session.Seal(loss, plan::PlanKey{{1}});
  const plan::MemoryPlan& memory = session.plan()->memory();
  EXPECT_TRUE(plan::ValidateMemoryPlan(memory));
  size_t naive = 0;
  for (const plan::ArenaSlot& slot : memory.slots) naive += slot.bytes;
  EXPECT_LT(memory.total_bytes, naive);
  EXPECT_GE(memory.total_bytes, memory.peak_live_bytes);
}

}  // namespace
}  // namespace revelio
