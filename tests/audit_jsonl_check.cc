// Standalone validator for per-explanation audit JSONL, used as a ctest
// fixture after `bench_table5_runtime --audit-out`:
//   audit_jsonl_check <audit.jsonl> [min_records]
// Exit 0 when every line is a schema-valid audit record:
//   - well-formed single-line JSON with the documented fields,
//   - loss_curve and mask_entropy the same length with every entry finite
//     (the JSON writer nulls non-finite doubles, so a null here means an
//     Inf/NaN leaked out of an audit hook),
//   - instance_in_group in [0, group_size) with complete per-instance
//     attribution: every group size observed contributes the same number of
//     records at each instance slot (no instance silently dropped or
//     double-counted by the mega-batched path),
//   - record_id unique and strictly increasing down the file.
// Exit 1 on validation failure, 2 on usage/IO errors.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using revelio::obs::JsonValue;

bool Fail(size_t line_no, const char* message) {
  std::fprintf(stderr, "audit_jsonl_check: line %zu: %s\n", line_no, message);
  return false;
}

const JsonValue* FiniteNumber(const JsonValue& object, const char* key, size_t line_no) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_number() || !std::isfinite(value->number_value)) {
    std::fprintf(stderr, "audit_jsonl_check: line %zu: missing finite numeric \"%s\"\n",
                 line_no, key);
    return nullptr;
  }
  return value;
}

bool FiniteArray(const JsonValue& object, const char* key, size_t line_no, size_t* length) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_array()) {
    std::fprintf(stderr, "audit_jsonl_check: line %zu: missing array \"%s\"\n", line_no, key);
    return false;
  }
  for (size_t i = 0; i < value->array_items.size(); ++i) {
    const JsonValue& entry = value->array_items[i];
    if (!entry.is_number() || !std::isfinite(entry.number_value)) {
      std::fprintf(stderr,
                   "audit_jsonl_check: line %zu: %s[%zu] is not a finite number "
                   "(a null here means Inf/NaN leaked from an audit hook)\n",
                   line_no, key, i);
      return false;
    }
  }
  *length = value->array_items.size();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: audit_jsonl_check <audit.jsonl> [min_records]\n");
    return 2;
  }
  const long min_records = argc == 3 ? std::strtol(argv[2], nullptr, 10) : 1;
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "audit_jsonl_check: cannot open %s\n", argv[1]);
    return 2;
  }

  size_t records = 0;
  size_t line_no = 0;
  bool have_prev_id = false;
  double prev_id = -1.0;
  // (group_size, instance_in_group) -> count, for the attribution check.
  std::map<std::pair<long, long>, long> slot_counts;
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;

    JsonValue record;
    std::string error;
    if (!revelio::obs::ParseJson(line, &record, &error)) {
      std::fprintf(stderr, "audit_jsonl_check: line %zu: malformed JSON: %s\n", line_no,
                   error.c_str());
      return 1;
    }
    if (!record.is_object()) return Fail(line_no, "record is not an object"), 1;

    const JsonValue* record_id = FiniteNumber(record, "record_id", line_no);
    const JsonValue* group_size = FiniteNumber(record, "group_size", line_no);
    const JsonValue* instance = FiniteNumber(record, "instance_in_group", line_no);
    const JsonValue* wall = FiniteNumber(record, "wall_seconds", line_no);
    if (record_id == nullptr || group_size == nullptr || instance == nullptr ||
        wall == nullptr) {
      return 1;
    }
    const JsonValue* method = record.Find("method");
    if (method == nullptr || !method->is_string() || method->string_value.empty()) {
      return Fail(line_no, "missing non-empty string \"method\""), 1;
    }
    const JsonValue* objective = record.Find("objective");
    if (objective == nullptr || !objective->is_string()) {
      return Fail(line_no, "missing string \"objective\""), 1;
    }
    const JsonValue* megabatched = record.Find("megabatched");
    if (megabatched == nullptr || megabatched->type != JsonValue::Type::kBool) {
      return Fail(line_no, "missing bool \"megabatched\""), 1;
    }
    const JsonValue* task = record.Find("task");
    if (task == nullptr || !task->is_object()) {
      return Fail(line_no, "missing object \"task\""), 1;
    }
    if (FiniteNumber(*task, "num_nodes", line_no) == nullptr ||
        FiniteNumber(*task, "num_edges", line_no) == nullptr) {
      return 1;
    }
    const JsonValue* pool = record.Find("pool");
    if (pool == nullptr || !pool->is_object() ||
        FiniteNumber(*pool, "hits", line_no) == nullptr ||
        FiniteNumber(*pool, "misses", line_no) == nullptr) {
      return Fail(line_no, "missing pool {hits, misses}"), 1;
    }

    // Convergence curves: one loss and one entropy sample per epoch, finite.
    size_t loss_len = 0;
    size_t entropy_len = 0;
    if (!FiniteArray(record, "loss_curve", line_no, &loss_len)) return 1;
    if (!FiniteArray(record, "mask_entropy", line_no, &entropy_len)) return 1;
    size_t scores_len = 0;
    if (!FiniteArray(record, "top_scores", line_no, &scores_len)) return 1;
    if (loss_len != entropy_len) {
      return Fail(line_no, "loss_curve and mask_entropy lengths differ"), 1;
    }

    // Identity / attribution invariants.
    const long g = static_cast<long>(group_size->number_value);
    const long k = static_cast<long>(instance->number_value);
    if (g < 1) return Fail(line_no, "group_size < 1"), 1;
    if (k < 0 || k >= g) return Fail(line_no, "instance_in_group outside [0, group_size)"), 1;
    ++slot_counts[{g, k}];
    if (have_prev_id && record_id->number_value <= prev_id) {
      return Fail(line_no, "record_id not strictly increasing"), 1;
    }
    prev_id = record_id->number_value;
    have_prev_id = true;
    ++records;
  }

  // Per-instance attribution completeness: within each group size, every
  // instance slot must appear the same number of times.
  for (const auto& [slot, count] : slot_counts) {
    const auto expected = slot_counts.find({slot.first, 0});
    if (expected == slot_counts.end() || expected->second != count) {
      std::fprintf(stderr,
                   "audit_jsonl_check: group_size %ld instance %ld appears %ld times, "
                   "instance 0 appears %ld times (incomplete per-instance attribution)\n",
                   slot.first, slot.second, count,
                   expected == slot_counts.end() ? 0L : expected->second);
      return 1;
    }
  }
  if (records < static_cast<size_t>(min_records)) {
    std::fprintf(stderr, "audit_jsonl_check: %zu records < required %ld\n", records,
                 min_records);
    return 1;
  }
  std::printf("audit_jsonl_check: %s ok (%zu records)\n", argv[1], records);
  return 0;
}
