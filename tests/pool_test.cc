// Unit tests for the pooled tensor allocator (tensor/pool.h): exact-size
// free-list reuse, zeroed acquisition on recycled buffers, poisoning,
// disabled-mode fallback, MemoryScope accounting, ReleaseTape semantics, and
// the steady-state contract — after a two-explanation warmup a Revelio
// explanation performs zero pool misses (checked both through the pool's own
// stats and through the tensor.pool.miss obs counter).

#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/revelio.h"
#include "explain/explainer.h"
#include "gnn/model.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace revelio {
namespace {

using tensor::MemoryScope;
using tensor::PoolStats;
using tensor::Tensor;
using tensor::TensorPool;

class PoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::SetNumThreads(1);
    tensor::SetPoolEnabled(true);
    tensor::SetPoolPoison(false);
    ASSERT_NE(TensorPool::ThreadLocal(), nullptr);
    TensorPool::ThreadLocal()->Trim();  // start from empty free lists
  }
  void TearDown() override {
    tensor::SetPoolEnabled(true);
    tensor::SetPoolPoison(false);
  }
};

TEST_F(PoolTest, ReleaseThenAcquireReusesTheExactBuffer) {
  TensorPool* pool = TensorPool::ThreadLocal();
  const PoolStats before = pool->stats();

  std::vector<float> buffer = tensor::AcquireBuffer(1234);
  ASSERT_EQ(buffer.size(), 1234u);
  const float* storage = buffer.data();
  buffer[0] = 42.0f;
  tensor::ReleaseBuffer(&buffer);
  EXPECT_TRUE(buffer.empty());

  std::vector<float> again = tensor::AcquireBuffer(1234);
  EXPECT_EQ(again.data(), storage) << "second acquisition did not recycle the buffer";
  EXPECT_EQ(again[0], 42.0f) << "recycled buffers are handed out dirty";

  const PoolStats after = pool->stats();
  EXPECT_EQ(after.hits - before.hits, 1u);
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.releases - before.releases, 1u);
  tensor::ReleaseBuffer(&again);
}

TEST_F(PoolTest, AcquireZeroedClearsRecycledBuffers) {
  std::vector<float> buffer = tensor::AcquireBuffer(512);
  for (auto& v : buffer) v = 7.0f;
  tensor::ReleaseBuffer(&buffer);

  const std::vector<float> zeroed = tensor::AcquireZeroedBuffer(512);
  for (float v : zeroed) ASSERT_EQ(v, 0.0f);
}

TEST_F(PoolTest, PoisonFillsRecycledBuffersWithNan) {
  tensor::SetPoolPoison(true);
  std::vector<float> buffer = tensor::AcquireBuffer(256);
  for (auto& v : buffer) v = 1.0f;
  tensor::ReleaseBuffer(&buffer);

  const std::vector<float> recycled = tensor::AcquireBuffer(256);
  for (float v : recycled) {
    ASSERT_EQ(std::bit_cast<uint32_t>(v), uint32_t{0x7fbadbad});
  }
  // AcquireZeroed must still produce clean zeros from a poisoned free list.
  std::vector<float> repoisoned(recycled);
  tensor::ReleaseBuffer(&repoisoned);
  const std::vector<float> zeroed = tensor::AcquireZeroedBuffer(256);
  for (float v : zeroed) ASSERT_EQ(v, 0.0f);
}

TEST_F(PoolTest, DisabledModeFallsBackToPlainZeroedAllocation) {
  // Park a dirty buffer, then disable: the legacy path must not serve it.
  std::vector<float> buffer = tensor::AcquireBuffer(2048);
  for (auto& v : buffer) v = 3.0f;
  tensor::ReleaseBuffer(&buffer);

  tensor::SetPoolEnabled(false);
  const std::vector<float> fresh = tensor::AcquireBuffer(2048);
  for (float v : fresh) ASSERT_EQ(v, 0.0f) << "disabled pool must allocate fresh zeroed storage";

  TensorPool* pool = TensorPool::ThreadLocal();
  const PoolStats before = pool->stats();
  std::vector<float> released(fresh);
  tensor::ReleaseBuffer(&released);
  EXPECT_TRUE(released.empty());
  EXPECT_EQ(pool->stats().releases, before.releases)
      << "disabled-mode releases must bypass the pool";
}

TEST_F(PoolTest, ZeroCountAndForeignBuffersAreSafe) {
  EXPECT_TRUE(tensor::AcquireBuffer(0).empty());
  std::vector<float> empty;
  tensor::ReleaseBuffer(&empty);  // no-op

  // A foreign buffer (never acquired from the pool) releases more bytes than
  // the pool thinks are in use; the accounting clamps instead of wrapping.
  TensorPool* pool = TensorPool::ThreadLocal();
  std::vector<float> foreign(100000, 1.0f);
  pool->Release(&foreign);
  EXPECT_LT(pool->stats().bytes_in_use, uint64_t{1} << 40) << "bytes_in_use underflowed";
}

TEST_F(PoolTest, MemoryScopeReportsTheScopedDelta) {
  MemoryScope scope("pool_test");
  std::vector<float> a = tensor::AcquireBuffer(64);
  tensor::ReleaseBuffer(&a);
  std::vector<float> b = tensor::AcquireBuffer(64);  // hit
  tensor::ReleaseBuffer(&b);
  const PoolStats delta = scope.Delta();
  EXPECT_GE(delta.hits, 1u);
  EXPECT_GE(delta.releases, 2u);
}

TEST_F(PoolTest, ReleaseTapeKeepsLeavesAndValues) {
  util::Rng rng(7);
  Tensor w = Tensor::Randn(4, 4, &rng).WithRequiresGrad();
  Tensor x = Tensor::Randn(4, 4, &rng);
  Tensor loss = tensor::Sum(tensor::Relu(tensor::MatMul(x, w)));
  loss.Backward();
  const std::vector<float> w_grad = w.GradData();
  ASSERT_FALSE(w_grad.empty());
  const float loss_value = loss.Value();

  loss.ReleaseTape();
  EXPECT_EQ(loss.Value(), loss_value) << "values must survive ReleaseTape";
  EXPECT_EQ(w.GradData(), w_grad) << "leaf parameter grads must survive ReleaseTape";
  loss.ReleaseTape();  // second release is a no-op
  EXPECT_EQ(loss.Value(), loss_value);
}

// The tentpole contract: once two warmup explanations primed the size
// classes, a further Revelio explanation — more epochs than the warmup, so
// the per-epoch loop dominates — allocates nothing: every buffer comes from
// the free lists (0 misses), visible both in the thread's own stats and in
// the cross-thread obs counter.
TEST_F(PoolTest, RevelioSteadyStateRunsWithZeroPoolMisses) {
  util::Rng rng(11);
  const int n = 20;
  graph::Graph g(n);
  for (int v = 0; v < n; ++v) g.AddUndirectedEdge(v, (v + 1) % n);
  for (int i = 0; i < 8; ++i) {
    const int u = rng.UniformInt(n);
    const int v = rng.UniformInt(n);
    if (u != v && !g.HasEdge(u, v)) g.AddEdge(u, v);
  }
  gnn::GnnConfig config;
  config.arch = gnn::GnnArch::kGcn;
  config.task = gnn::TaskType::kNodeClassification;
  config.input_dim = 5;
  config.hidden_dim = 8;
  config.num_classes = 2;
  config.seed = 12;
  gnn::GnnModel model(config);
  model.Freeze();
  explain::ExplanationTask task;
  task.model = &model;
  task.graph = &g;
  task.features = Tensor::Uniform(n, 5, -1.0f, 1.0f, &rng);
  task.target_node = 3;
  task.target_class = 1;

  {
    core::RevelioOptions warmup_options;
    warmup_options.epochs = 2;
    core::RevelioExplainer warmup(warmup_options);
    (void)warmup.Explain(task, explain::Objective::kFactual);
    (void)warmup.Explain(task, explain::Objective::kFactual);
  }

  const bool obs_was_enabled = obs::Enabled();
  obs::SetEnabled(true);
  obs::Counter* miss_counter = obs::MetricsRegistry::Global().GetCounter("tensor.pool.miss");
  const uint64_t obs_misses_before = miss_counter->Total();
  TensorPool* pool = TensorPool::ThreadLocal();
  const PoolStats before = pool->stats();

  core::RevelioOptions options;
  options.epochs = 6;
  core::RevelioExplainer explainer(options);
  const explain::Explanation explanation = explainer.Explain(task, explain::Objective::kFactual);
  EXPECT_FALSE(explanation.edge_scores.empty());

  const PoolStats after = pool->stats();
  EXPECT_EQ(after.misses, before.misses)
      << "a post-warmup Revelio explanation performed pool misses";
  EXPECT_GT(after.hits, before.hits) << "the explanation did not go through the pool at all";
  EXPECT_EQ(miss_counter->Total(), obs_misses_before)
      << "tensor.pool.miss advanced during a steady-state explanation";
  obs::SetEnabled(obs_was_enabled);
}

}  // namespace
}  // namespace revelio
