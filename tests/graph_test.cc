// Tests for the graph module: container invariants, adjacency, subgraph
// extraction, edge removal, batching.

#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/batch.h"
#include "graph/subgraph.h"

namespace revelio::graph {
namespace {

Graph MakePathGraph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

TEST(GraphTest, AddEdgeAndAdjacency) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 1);
  g.AddEdge(1, 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_EQ(g.InEdges(1).size(), 2u);
  EXPECT_EQ(g.OutEdges(1).size(), 1u);
  EXPECT_EQ(g.InEdges(0).size(), 0u);
}

TEST(GraphTest, UndirectedEdgeAddsBothDirections) {
  Graph g(2);
  g.AddUndirectedEdge(0, 1);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
}

TEST(GraphTest, DegreesAndMaxInDegree) {
  Graph g(3);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  const auto in = g.InDegrees();
  const auto out = g.OutDegrees();
  EXPECT_EQ(in[2], 2);
  EXPECT_EQ(in[1], 0);
  EXPECT_EQ(out[2], 1);
  EXPECT_EQ(g.MaxInDegree(), 2);
}

TEST(GraphTest, RemoveEdgesPreservesOrderAndMapsIndices) {
  Graph g = MakePathGraph(5);  // edges 0-1,1-2,2-3,3-4
  std::vector<int> index_map;
  Graph reduced = g.RemoveEdges({1, 3}, &index_map);
  EXPECT_EQ(reduced.num_edges(), 2);
  EXPECT_TRUE(reduced.HasEdge(0, 1));
  EXPECT_TRUE(reduced.HasEdge(2, 3));
  EXPECT_EQ(index_map[0], 0);
  EXPECT_EQ(index_map[1], -1);
  EXPECT_EQ(index_map[2], 1);
  EXPECT_EQ(index_map[3], -1);
  EXPECT_EQ(reduced.num_nodes(), 5) << "node set is unchanged";
}

TEST(GraphTest, RemoveNoEdgesIsIdentity) {
  Graph g = MakePathGraph(4);
  Graph same = g.RemoveEdges({});
  EXPECT_EQ(same.num_edges(), g.num_edges());
}

// --- Structure versions and cache invalidation (DESIGN.md §12) -------------
// Recorded execution plans key on structure_version(); these tests pin the
// stamping rules the plan keys depend on.

TEST(GraphTest, StructureVersionIsProcessUniqueAndBumpedByMutation) {
  Graph a(3);
  Graph b(3);
  EXPECT_NE(a.structure_version(), b.structure_version())
      << "distinct graphs must never share a stamp, even with equal shape";

  const uint64_t before_edge = a.structure_version();
  a.AddEdge(0, 1);
  const uint64_t after_edge = a.structure_version();
  EXPECT_NE(after_edge, before_edge);

  a.set_num_nodes(5);
  EXPECT_NE(a.structure_version(), after_edge);
}

TEST(GraphTest, RemoveEdgesResultCarriesFreshStructureVersion) {
  Graph g = MakePathGraph(5);
  const uint64_t original = g.structure_version();
  Graph reduced = g.RemoveEdges({1});
  EXPECT_NE(reduced.structure_version(), original)
      << "a rebuilt graph replaying a plan keyed on the original would be stale";
  EXPECT_EQ(g.structure_version(), original) << "the source graph is untouched";
  // Even a no-op removal yields a new stamp: the result is a distinct object
  // whose caches start cold.
  EXPECT_NE(g.RemoveEdges({}).structure_version(), original);
}

// Regression mirroring the PR 4 dirty-heap case at the adjacency layer:
// a lazily-built cache consulted after a structural mutation must reflect
// the mutation, not the stale snapshot. set_num_nodes used to leave
// adjacency_built_ set, so InEdges/OutEdges on the grown node range read
// out-of-date (or out-of-bounds) cached lists.
TEST(GraphTest, SetNumNodesInvalidatesBuiltAdjacency) {
  Graph g(2);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.InEdges(1).size(), 1u);  // forces the lazy adjacency build

  g.set_num_nodes(4);
  EXPECT_EQ(g.InEdges(3).size(), 0u) << "new node must have an (empty) adjacency row";
  const int e = g.AddEdge(1, 3);
  ASSERT_EQ(g.InEdges(3).size(), 1u);
  EXPECT_EQ(g.InEdges(3)[0], e);
  EXPECT_EQ(g.OutEdges(1).size(), 1u);
}

TEST(GraphTest, CsrCacheRebuildsAfterMutationAndRemoveEdges) {
  Graph g(3);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  const tensor::CsrPatternRef before = g.InCsr();
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->nnz(), 2);

  // AddEdge invalidates the cached pattern; the next InCsr() sees the edge.
  g.AddEdge(2, 0);
  const tensor::CsrPatternRef after = g.InCsr();
  EXPECT_EQ(after->nnz(), 3);
  EXPECT_EQ(before->nnz(), 2) << "callers holding the old ref keep a stable snapshot";

  // RemoveEdges builds a fresh graph whose CSR matches its reduced edge list
  // and leaves the source's cache untouched.
  Graph reduced = g.RemoveEdges({0});
  EXPECT_EQ(reduced.InCsr()->nnz(), 2);
  EXPECT_EQ(g.InCsr()->nnz(), 3);
}

TEST(SubgraphTest, KHopExtractsInNeighborhood) {
  // 0 -> 1 -> 2 -> 3 -> 4 (directed path), target 4, k = 2.
  Graph g = MakePathGraph(5);
  Subgraph sub = ExtractKHopInSubgraph(g, 4, 2);
  EXPECT_EQ(sub.graph.num_nodes(), 3);  // nodes 2, 3, 4
  EXPECT_EQ(sub.graph.num_edges(), 2);  // 2->3, 3->4
  EXPECT_EQ(sub.node_map.size(), 3u);
  EXPECT_EQ(sub.node_map[sub.target_local], 4);
}

TEST(SubgraphTest, DirectionalityMatters) {
  // Edge 4 -> 3 should not pull node 4 into target 4's own... build: 0->1, 2->1.
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  Subgraph sub = ExtractKHopInSubgraph(g, 0, 2);
  EXPECT_EQ(sub.graph.num_nodes(), 1) << "no edges point into node 0";
  EXPECT_EQ(sub.graph.num_edges(), 0);
}

TEST(SubgraphTest, EdgeMapPointsToGlobalIndices) {
  Graph g(4);
  const int e0 = g.AddEdge(0, 1);
  g.AddEdge(3, 2);  // unrelated to target 1's 1-hop neighborhood
  const int e2 = g.AddEdge(2, 1);
  Subgraph sub = ExtractKHopInSubgraph(g, 1, 1);
  ASSERT_EQ(sub.edge_map.size(), 2u);
  EXPECT_EQ(sub.edge_map[0], e0);
  EXPECT_EQ(sub.edge_map[1], e2);
}

TEST(SubgraphTest, IncludesInducedEdgesAmongAncestors) {
  // Triangle 0->1, 1->2, 0->2 with target 2, k=2: all nodes and edges kept.
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  Subgraph sub = ExtractKHopInSubgraph(g, 2, 2);
  EXPECT_EQ(sub.graph.num_nodes(), 3);
  EXPECT_EQ(sub.graph.num_edges(), 3);
}

TEST(SubgraphTest, SliceRowsSelectsFeatureRows) {
  tensor::Tensor features = tensor::Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  tensor::Tensor sliced = SliceRows(features, {2, 0});
  EXPECT_EQ(sliced.rows(), 2);
  EXPECT_EQ(sliced.At(0, 0), 5.0f);
  EXPECT_EQ(sliced.At(1, 1), 2.0f);
}

TEST(BatchTest, BlockDiagonalMerge) {
  GraphInstance a;
  a.graph = Graph(2);
  a.graph.AddEdge(0, 1);
  a.features = tensor::Tensor::Full(2, 3, 1.0f);
  a.labels = {0};
  GraphInstance b;
  b.graph = Graph(3);
  b.graph.AddEdge(1, 2);
  b.features = tensor::Tensor::Full(3, 3, 2.0f);
  b.labels = {1};

  GraphBatch batch = MakeBatch({&a, &b});
  EXPECT_EQ(batch.num_graphs, 2);
  EXPECT_EQ(batch.graph.num_nodes(), 5);
  EXPECT_EQ(batch.graph.num_edges(), 2);
  EXPECT_TRUE(batch.graph.HasEdge(0, 1));
  EXPECT_TRUE(batch.graph.HasEdge(3, 4)) << "second graph offset by 2";
  EXPECT_EQ(batch.node_to_graph[0], 0);
  EXPECT_EQ(batch.node_to_graph[2], 1);
  EXPECT_EQ(batch.labels[1], 1);
  EXPECT_EQ(batch.features.At(2, 0), 2.0f);
}

}  // namespace
}  // namespace revelio::graph
