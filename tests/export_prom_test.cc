// Prometheus exposition tests: name sanitization, and the full round trip —
// snapshot -> exposition text -> parse -> every counter, gauge, cumulative
// histogram bucket, sum/count, and derived p50/p95/p99 gauge agrees with the
// same snapshot (the source of truth the JSON export also renders). Plus the
// atomic file writer and the background export thread.

#include "obs/export_prom.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace revelio {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string TempPath(const char* name) { return ::testing::TempDir() + "/" + name; }

// Minimal exposition parser: "name{labels} value" lines keyed by
// name + label string; "# TYPE name kind" lines keyed by name.
struct Exposition {
  std::map<std::string, double> samples;  // "name" or "name{le=\"...\"}"
  std::map<std::string, std::string> types;
};

Exposition ParseExposition(const std::string& text) {
  Exposition parsed;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string name;
      std::string kind;
      fields >> name >> kind;
      parsed.types[name] = kind;
      continue;
    }
    if (line[0] == '#') continue;
    // The sample name (with optional {labels}) runs up to the last space.
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    parsed.samples[line.substr(0, space)] = std::strtod(line.c_str() + space + 1, nullptr);
  }
  return parsed;
}

std::string FormatBound(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

class ExportPromTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::StopMetricsExportThread();
    obs::SetEnabled(false);
  }
};

TEST_F(ExportPromTest, MetricNameSanitization) {
  EXPECT_EQ(obs::PrometheusMetricName("tensor.pool.hit"), "revelio_tensor_pool_hit");
  EXPECT_EQ(obs::PrometheusMetricName("gnn.train.epoch-seconds"),
            "revelio_gnn_train_epoch_seconds");
  EXPECT_EQ(obs::PrometheusMetricName("weird name!@#$%^&*()"), "revelio_weirdname");
  EXPECT_EQ(obs::PrometheusMetricName("already_ok_123"), "revelio_already_ok_123");
  EXPECT_EQ(obs::PrometheusMetricName(""), "revelio_");
}

// The acceptance round trip: every metric in the exposition must agree with
// the MetricsSnapshot it was rendered from.
TEST_F(ExportPromTest, ExpositionAgreesWithSnapshotOnEveryMetric) {
  obs::SetEnabled(true);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* counter = registry.GetCounter("promtest.counter");
  counter->Reset();
  counter->Add(42);
  obs::Gauge* gauge = registry.GetGauge("promtest.gauge");
  gauge->Set(2.5);
  obs::Histogram* histogram = registry.GetHistogram("promtest.histogram", {0.1, 1.0, 10.0});
  histogram->Reset();
  for (double v : {0.05, 0.5, 0.5, 5.0, 50.0}) histogram->Observe(v);

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  const Exposition parsed = ParseExposition(obs::PrometheusText(snapshot));

  // Counters: `<name>_total` with TYPE counter.
  for (const auto& [raw, value] : snapshot.counters) {
    const std::string name = obs::PrometheusMetricName(raw) + "_total";
    ASSERT_TRUE(parsed.samples.count(name)) << "missing counter " << name;
    EXPECT_EQ(parsed.samples.at(name), static_cast<double>(value)) << name;
    EXPECT_EQ(parsed.types.at(name), "counter");
  }
  // Gauges.
  for (const auto& [raw, value] : snapshot.gauges) {
    const std::string name = obs::PrometheusMetricName(raw);
    ASSERT_TRUE(parsed.samples.count(name)) << "missing gauge " << name;
    EXPECT_EQ(parsed.samples.at(name), value) << name;
    EXPECT_EQ(parsed.types.at(name), "gauge");
  }
  // Histograms: cumulative buckets, +Inf, sum, count, derived quantiles.
  for (const auto& entry : snapshot.histograms) {
    const std::string name = obs::PrometheusMetricName(entry.name);
    EXPECT_EQ(parsed.types.at(name), "histogram");
    uint64_t cumulative = 0;
    for (size_t b = 0; b < entry.bounds.size(); ++b) {
      cumulative += entry.counts[b];
      const std::string key = name + "_bucket{le=\"" + FormatBound(entry.bounds[b]) + "\"}";
      ASSERT_TRUE(parsed.samples.count(key)) << "missing bucket " << key;
      EXPECT_EQ(parsed.samples.at(key), static_cast<double>(cumulative)) << key;
    }
    const std::string inf_key = name + "_bucket{le=\"+Inf\"}";
    ASSERT_TRUE(parsed.samples.count(inf_key)) << "missing " << inf_key;
    EXPECT_EQ(parsed.samples.at(inf_key), static_cast<double>(entry.count));
    EXPECT_EQ(parsed.samples.at(name + "_count"), static_cast<double>(entry.count));
    EXPECT_DOUBLE_EQ(parsed.samples.at(name + "_sum"), entry.sum);
    const obs::HistogramSummary summary = obs::SummarizeHistogram(entry);
    EXPECT_DOUBLE_EQ(parsed.samples.at(name + "_p50"), summary.p50) << name;
    EXPECT_DOUBLE_EQ(parsed.samples.at(name + "_p95"), summary.p95) << name;
    EXPECT_DOUBLE_EQ(parsed.samples.at(name + "_p99"), summary.p99) << name;
  }
  // Nothing in the exposition that is not in the snapshot: count the sample
  // families (each histogram renders bounds + 5 fixed series).
  size_t expected_samples = snapshot.counters.size() + snapshot.gauges.size();
  for (const auto& entry : snapshot.histograms) {
    expected_samples += entry.bounds.size() + 1 /*+Inf*/ + 2 /*sum,count*/ + 3 /*quantiles*/;
  }
  EXPECT_EQ(parsed.samples.size(), expected_samples);
}

TEST_F(ExportPromTest, KnownHistogramRendersExactCumulativeBuckets) {
  obs::MetricsSnapshot::HistogramEntry entry;
  entry.name = "promtest.exact";
  entry.bounds = {1.0, 2.0};
  entry.counts = {3, 4, 2};  // last = overflow
  entry.count = 9;
  entry.sum = 12.5;
  obs::MetricsSnapshot snapshot;
  snapshot.histograms.push_back(entry);
  const Exposition parsed = ParseExposition(obs::PrometheusText(snapshot));
  EXPECT_EQ(parsed.samples.at("revelio_promtest_exact_bucket{le=\"1\"}"), 3.0);
  EXPECT_EQ(parsed.samples.at("revelio_promtest_exact_bucket{le=\"2\"}"), 7.0);
  EXPECT_EQ(parsed.samples.at("revelio_promtest_exact_bucket{le=\"+Inf\"}"), 9.0);
  EXPECT_EQ(parsed.samples.at("revelio_promtest_exact_sum"), 12.5);
  EXPECT_EQ(parsed.samples.at("revelio_promtest_exact_count"), 9.0);
}

TEST_F(ExportPromTest, WriteFileIsAtomicAndParseable) {
  obs::SetEnabled(true);
  obs::MetricsRegistry::Global().GetCounter("promtest.file.counter")->Add(1);
  const std::string path = TempPath("prom_export.txt");
  ASSERT_TRUE(obs::WritePrometheusTextFile(path));
  // No .tmp residue from the tmp+rename protocol.
  EXPECT_TRUE(ReadFile(path + ".tmp").empty());
  const Exposition parsed = ParseExposition(ReadFile(path));
  EXPECT_TRUE(parsed.samples.count("revelio_promtest_file_counter_total"));
  std::remove(path.c_str());
}

TEST_F(ExportPromTest, BackgroundExporterRewritesFile) {
  obs::SetEnabled(true);
  obs::MetricsRegistry::Global().GetCounter("promtest.bg.counter")->Add(3);
  const std::string path = TempPath("prom_bg.txt");
  std::remove(path.c_str());
  obs::StartMetricsExportThread(path, 10);
  // Poll for the first periodic write (bounded: ~1s worst case).
  std::string content;
  for (int i = 0; i < 100 && content.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    content = ReadFile(path);
  }
  obs::StopMetricsExportThread();
  ASSERT_FALSE(content.empty()) << "background exporter never wrote " << path;
  const Exposition parsed = ParseExposition(content);
  EXPECT_TRUE(parsed.samples.count("revelio_promtest_bg_counter_total"));
  // Stop is idempotent and a second start/stop cycle works.
  obs::StopMetricsExportThread();
  obs::StartMetricsExportThread(path, 5);
  obs::StopMetricsExportThread();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace revelio
