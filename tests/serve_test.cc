// Deterministic fault-injection tests for the explanation-serving engine
// (src/serve). Scheduling is controlled by the tests: no Start() means the
// queue only moves when the test calls RunOnce(), and time only moves when
// the test advances a ManualClock — so queue-full rejection, deadline expiry
// mid-queue, shutdown with in-flight work, and exact latency accounting are
// all asserted without a single wall-clock sleep.

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "explain/explainer.h"
#include "plan/plan.h"
#include "gnn/model.h"
#include "graph/graph.h"
#include "serve/clock.h"
#include "serve/model_registry.h"
#include "serve/queue.h"
#include "serve/server.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace revelio::serve {
namespace {

constexpr int kFeatureDim = 4;

// Counts calls and (optionally) blocks inside ExplainImpl until the test
// grants a permit — the hook the in-flight shutdown and backpressure tests
// use to hold a worker mid-request at a known point.
class FakeExplainer : public explain::Explainer {
 public:
  std::string name() const override { return "Fake"; }

  void SetGated() {
    std::lock_guard<std::mutex> lock(mu_);
    permits_ = 0;
    gated_ = true;
  }
  void Release(int n) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      permits_ += n;
    }
    cv_.notify_all();
  }
  int calls() const { return calls_.load(); }
  int entered() const { return entered_.load(); }
  void WaitEntered(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [this, n] { return entered_.load() >= n; });
  }

 protected:
  explain::Explanation ExplainImpl(const explain::ExplanationTask& task,
                                   explain::Objective objective) override {
    (void)objective;
    entered_.fetch_add(1);
    entered_cv_.notify_all();
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !gated_ || permits_ > 0; });
      if (gated_) --permits_;
    }
    calls_.fetch_add(1);
    explain::Explanation explanation;
    explanation.edge_scores.assign(task.graph->num_edges(),
                                   static_cast<double>(task.target_node));
    return explanation;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable entered_cv_;
  bool gated_ = false;
  int permits_ = 0;
  std::atomic<int> calls_{0};
  std::atomic<int> entered_{0};
};

std::unique_ptr<gnn::GnnModel> MakeModel(uint64_t seed) {
  gnn::GnnConfig config;
  config.arch = gnn::GnnArch::kGcn;
  config.task = gnn::TaskType::kNodeClassification;
  config.input_dim = kFeatureDim;
  config.hidden_dim = 4;
  config.num_classes = 2;
  config.num_layers = 2;
  config.seed = seed;
  return std::make_unique<gnn::GnnModel>(config);
}

ExplainRequest MakeRequest(const std::string& model, int target_node = 0) {
  ExplainRequest request;
  request.model = model;
  request.method = "Fake";
  const int n = 5;
  request.graph = graph::Graph(n);
  for (int v = 0; v < n; ++v) request.graph.AddUndirectedEdge(v, (v + 1) % n);
  util::Rng rng(7);
  request.features = tensor::Tensor::Uniform(n, kFeatureDim, -1.0f, 1.0f, &rng);
  request.target_node = target_node;
  return request;
}

class ServeTest : public ::testing::Test {
 protected:
  ServeTest() {
    EXPECT_TRUE(registry_.Register("m1", MakeModel(1)).ok());
    EXPECT_TRUE(registry_.Register("m2", MakeModel(2)).ok());
  }

  // Builds a synchronous (no-worker) server on the manual clock with the
  // fake explainer installed. Tests tweak `options` first when needed.
  std::unique_ptr<ExplanationServer> MakeServer(ServeOptions options) {
    if (options.clock == nullptr) options.clock = &clock_;
    auto server = std::make_unique<ExplanationServer>(&registry_, options);
    auto fake = std::make_unique<FakeExplainer>();
    fake_ = fake.get();
    server->RegisterExplainer("Fake", std::move(fake));
    return server;
  }

  ModelRegistry registry_;
  ManualClock clock_;
  FakeExplainer* fake_ = nullptr;
};

TEST_F(ServeTest, QueueFullRejectionIsExplicit) {
  ServeOptions options;
  options.queue_capacity = 2;
  auto server = MakeServer(options);

  auto a = server->TrySubmit(MakeRequest("m1"));
  auto b = server->TrySubmit(MakeRequest("m1"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = server->TrySubmit(MakeRequest("m1"));
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), util::StatusCode::kResourceExhausted);

  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected_full, 1u);
  EXPECT_EQ(stats.queue_depth, 2u);

  // The rejected request never reaches the explainer; the accepted backlog
  // still serves normally.
  while (server->RunOnce().completed > 0) {
  }
  EXPECT_EQ(fake_->calls(), 2);
  EXPECT_TRUE(a.value().get().status.ok());
  EXPECT_TRUE(b.value().get().status.ok());
}

TEST_F(ServeTest, DeadlineExpiryMidQueueSkipsTheExplainer) {
  ServeOptions options;
  options.coalesce = false;  // isolate the deadline-at-dequeue path
  auto server = MakeServer(options);

  auto ok_req = server->TrySubmit(MakeRequest("m1"));
  ExplainRequest dated = MakeRequest("m1");
  dated.deadline_nanos = clock_.NowNanos() + 10'000'000;  // +10ms, absolute
  auto dated_req = server->TrySubmit(std::move(dated));
  ASSERT_TRUE(ok_req.ok());
  ASSERT_TRUE(dated_req.ok());

  clock_.AdvanceNanos(20'000'000);  // both waited 20ms in queue

  ExplanationServer::RunOnceResult first = server->RunOnce();
  EXPECT_EQ(first.ran, 1);
  EXPECT_EQ(first.timed_out, 0);
  ExplanationServer::RunOnceResult second = server->RunOnce();
  EXPECT_EQ(second.ran, 0);
  EXPECT_EQ(second.timed_out, 1);

  EXPECT_TRUE(ok_req.value().get().status.ok());
  ExplainResponse late = dated_req.value().get();
  EXPECT_EQ(late.status.code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(late.queue_seconds, 0.020);
  EXPECT_EQ(fake_->calls(), 1);  // the expired request never ran
  EXPECT_EQ(server->stats().timed_out, 1u);
}

TEST_F(ServeTest, CoalescingTimesOutExpiredGroupMembers) {
  // An expired request encountered while extending a coalesced group is
  // answered DeadlineExceeded in the same RunOnce and never fused in.
  auto server = MakeServer(ServeOptions{});
  auto ok_req = server->TrySubmit(MakeRequest("m1"));
  ExplainRequest dated = MakeRequest("m1");
  dated.deadline_nanos = clock_.NowNanos() + 10'000'000;
  auto dated_req = server->TrySubmit(std::move(dated));
  ASSERT_TRUE(ok_req.ok());
  ASSERT_TRUE(dated_req.ok());

  clock_.AdvanceNanos(20'000'000);
  ExplanationServer::RunOnceResult result = server->RunOnce();
  EXPECT_EQ(result.completed, 2);
  EXPECT_EQ(result.ran, 1);
  EXPECT_EQ(result.timed_out, 1);
  ExplainResponse served = ok_req.value().get();
  EXPECT_TRUE(served.status.ok());
  EXPECT_EQ(served.batch_size, 1);
  EXPECT_EQ(dated_req.value().get().status.code(),
            util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(fake_->calls(), 1);
}

TEST_F(ServeTest, ShutdownDrainServesTheBacklog) {
  auto server = MakeServer(ServeOptions{});
  auto a = server->TrySubmit(MakeRequest("m1"));
  auto b = server->TrySubmit(MakeRequest("m2"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  server->Shutdown(ExplanationServer::DrainMode::kDrain);
  EXPECT_EQ(server->state(), QueueState::kStopped);
  EXPECT_TRUE(a.value().get().status.ok());
  EXPECT_TRUE(b.value().get().status.ok());
  EXPECT_EQ(fake_->calls(), 2);
  EXPECT_EQ(server->stats().completed, 2u);
  EXPECT_EQ(server->stats().cancelled, 0u);
}

TEST_F(ServeTest, ShutdownCancelAnswersTheBacklogCancelled) {
  auto server = MakeServer(ServeOptions{});
  auto a = server->TrySubmit(MakeRequest("m1"));
  auto b = server->TrySubmit(MakeRequest("m1"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  server->Shutdown(ExplanationServer::DrainMode::kCancel);
  EXPECT_EQ(server->state(), QueueState::kStopped);
  EXPECT_EQ(a.value().get().status.code(), util::StatusCode::kCancelled);
  EXPECT_EQ(b.value().get().status.code(), util::StatusCode::kCancelled);
  EXPECT_EQ(fake_->calls(), 0);
  EXPECT_EQ(server->stats().cancelled, 2u);

  // Admission after shutdown is an explicit Unavailable, not a hang.
  auto late = server->TrySubmit(MakeRequest("m1"));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(server->stats().rejected_shutdown, 1u);
}

TEST_F(ServeTest, ShutdownCancelLetsInFlightWorkComplete) {
  ServeOptions options;
  options.num_workers = 1;
  options.coalesce = false;  // keep the two requests as separate dequeues
  auto server = MakeServer(options);
  fake_->SetGated();
  server->Start();

  auto in_flight = server->TrySubmit(MakeRequest("m1"));
  ASSERT_TRUE(in_flight.ok());
  fake_->WaitEntered(1);  // the worker now holds request A inside ExplainImpl
  auto queued = server->TrySubmit(MakeRequest("m1"));
  ASSERT_TRUE(queued.ok());

  std::thread shutdown_thread(
      [&server] { server->Shutdown(ExplanationServer::DrainMode::kCancel); });
  // Shutdown cancels the queued request immediately, then blocks joining the
  // worker that still holds A. Releasing the gate lets A complete normally.
  EXPECT_EQ(queued.value().get().status.code(), util::StatusCode::kCancelled);
  fake_->Release(1);
  shutdown_thread.join();

  EXPECT_TRUE(in_flight.value().get().status.ok());
  EXPECT_EQ(fake_->calls(), 1);
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
}

TEST_F(ServeTest, ShutdownDrainWithWorkerServesEverything) {
  ServeOptions options;
  options.num_workers = 1;
  auto server = MakeServer(options);
  fake_->SetGated();
  server->Start();

  std::vector<std::future<ExplainResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    auto submitted = server->TrySubmit(MakeRequest("m1", i % 5));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  fake_->Release(4);
  server->Shutdown(ExplanationServer::DrainMode::kDrain);
  for (auto& future : futures) EXPECT_TRUE(future.get().status.ok());
  EXPECT_EQ(server->stats().completed, 4u);
}

TEST_F(ServeTest, DuplicateModelRegistrationIsAlreadyExists) {
  util::Status dup = registry_.Register("m1", MakeModel(3));
  EXPECT_EQ(dup.code(), util::StatusCode::kAlreadyExists);
  EXPECT_EQ(registry_.size(), 2u);
  EXPECT_EQ(registry_.Register("", MakeModel(3)).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(registry_.Register("m3", nullptr).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(registry_.Remove("ghost").code(), util::StatusCode::kNotFound);
}

TEST_F(ServeTest, SeededClockLatencyAccountingIsExact) {
  auto server = MakeServer(ServeOptions{});
  auto submitted = server->TrySubmit(MakeRequest("m1"));
  ASSERT_TRUE(submitted.ok());

  clock_.AdvanceNanos(5'000'000);  // 5ms in queue
  EXPECT_EQ(server->RunOnce().ran, 1);
  ExplainResponse response = submitted.value().get();
  ASSERT_TRUE(response.status.ok());
  EXPECT_DOUBLE_EQ(response.queue_seconds, 0.005);
  EXPECT_DOUBLE_EQ(response.run_seconds, 0.0);  // manual clock: no time passes
  EXPECT_EQ(response.batch_size, 1);
}

TEST_F(ServeTest, InvalidRequestsAreRejectedAtAdmission) {
  auto server = MakeServer(ServeOptions{});

  auto no_model = server->TrySubmit(MakeRequest("ghost"));
  ASSERT_FALSE(no_model.ok());
  EXPECT_EQ(no_model.status().code(), util::StatusCode::kNotFound);

  ExplainRequest bad_method = MakeRequest("m1");
  bad_method.method = "NoSuchMethod";
  auto unknown = server->TrySubmit(std::move(bad_method));
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), util::StatusCode::kInvalidArgument);

  ExplainRequest bad_task = MakeRequest("m1");
  bad_task.target_node = 99;  // out of range for the 5-node graph
  auto invalid = server->TrySubmit(std::move(bad_task));
  ASSERT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.status().code(), util::StatusCode::kInvalidArgument);

  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.rejected_invalid, 3u);
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(server->queue_depth(), 0u);
}

TEST_F(ServeTest, CoalescingFusesConsecutiveSameKeyRequests) {
  ServeOptions options;
  options.coalesce_limit = 8;
  auto server = MakeServer(options);

  std::vector<std::future<ExplainResponse>> futures;
  for (int i = 0; i < 3; ++i) {
    auto submitted = server->TrySubmit(MakeRequest("m1", i));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  auto other = server->TrySubmit(MakeRequest("m2"));
  ASSERT_TRUE(other.ok());

  // First RunOnce fuses the prefix run of three same-(method, model,
  // objective) requests into one group; the m2 request is NOT pulled in.
  ExplanationServer::RunOnceResult first = server->RunOnce();
  EXPECT_EQ(first.ran, 3);
  for (int i = 0; i < 3; ++i) {
    ExplainResponse response = futures[i].get();
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(response.batch_size, 3);
    // Determinism: the fake encodes the target node into the scores, so the
    // fused results stay per-request.
    ASSERT_FALSE(response.explanation.edge_scores.empty());
    EXPECT_EQ(response.explanation.edge_scores[0], static_cast<double>(i));
  }
  EXPECT_EQ(server->RunOnce().ran, 1);
  EXPECT_EQ(other.value().get().batch_size, 1);

  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.coalesced_groups, 1u);
  EXPECT_EQ(stats.coalesced_instances, 3u);
}

TEST_F(ServeTest, CoalescingHonorsTheLimit) {
  ServeOptions options;
  options.coalesce_limit = 2;
  auto server = MakeServer(options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server->TrySubmit(MakeRequest("m1", i)).ok());
  }
  EXPECT_EQ(server->RunOnce().ran, 2);
  EXPECT_EQ(server->RunOnce().ran, 2);
  EXPECT_EQ(server->RunOnce().ran, 1);
}

TEST_F(ServeTest, BlockingSubmitAppliesBackpressure) {
  ServeOptions options;
  options.queue_capacity = 1;
  options.num_workers = 1;
  options.coalesce = false;
  auto server = MakeServer(options);
  fake_->SetGated();
  server->Start();

  auto first = server->TrySubmit(MakeRequest("m1"));
  ASSERT_TRUE(first.ok());
  fake_->WaitEntered(1);  // worker holds the first request; queue is empty
  auto second = server->TrySubmit(MakeRequest("m1"));
  ASSERT_TRUE(second.ok());  // fills the queue

  std::atomic<bool> admitted{false};
  util::StatusOr<std::future<ExplainResponse>> third =
      util::Status::Internal("not yet");
  std::thread submitter([&] {
    third = server->Submit(MakeRequest("m1"));  // blocks: queue is full
    admitted.store(true);
  });
  EXPECT_FALSE(admitted.load());  // still parked (best-effort, no sleep)
  fake_->Release(3);              // drain everything
  submitter.join();
  EXPECT_TRUE(admitted.load());
  ASSERT_TRUE(third.ok());

  server->Shutdown(ExplanationServer::DrainMode::kDrain);
  EXPECT_TRUE(first.value().get().status.ok());
  EXPECT_TRUE(second.value().get().status.ok());
  EXPECT_TRUE(third.value().get().status.ok());
  EXPECT_EQ(server->stats().completed, 3u);
}

TEST_F(ServeTest, AdmissionQueueConservesItems) {
  AdmissionQueue queue(4);
  QueueItem item;
  item.coalesce_key = 1;
  for (uint64_t i = 0; i < 4; ++i) {
    item.id = i;
    EXPECT_TRUE(queue.TryPush(item).ok());
  }
  EXPECT_EQ(queue.TryPush(item).code(), util::StatusCode::kResourceExhausted);

  QueueItem popped;
  EXPECT_TRUE(queue.TryPop(&popped));
  EXPECT_EQ(popped.id, 0u);  // FIFO
  EXPECT_TRUE(queue.TryPopMatching(1, &popped));
  EXPECT_EQ(popped.id, 1u);
  EXPECT_FALSE(queue.TryPopMatching(2, &popped));  // front key differs

  std::vector<QueueItem> cancelled = queue.BeginShutdown(/*cancel=*/true);
  EXPECT_EQ(cancelled.size(), 2u);
  EXPECT_EQ(queue.state(), QueueState::kCancelling);
  EXPECT_EQ(queue.TryPush(item).code(), util::StatusCode::kUnavailable);
  queue.MarkStopped();
  EXPECT_EQ(queue.total_pushed(), queue.total_popped() + queue.total_cancelled());
}

// --- serve x plan fault injection (DESIGN.md §12) ---------------------------

// Requests routed to the real Revelio explainer (built lazily from
// ServeOptions), whose training loop records and replays execution plans.
ExplainRequest MakeRevelioRequest(const std::string& model, uint64_t seed) {
  ExplainRequest request;
  request.model = model;
  request.method = "Revelio";
  util::Rng rng(seed);
  const int n = 6;
  request.graph = graph::Graph(n);
  for (int v = 0; v < n; ++v) request.graph.AddUndirectedEdge(v, (v + 1) % n);
  request.features = tensor::Tensor::Uniform(n, kFeatureDim, -1.0f, 1.0f, &rng);
  request.target_node = static_cast<int>(seed % n);
  request.target_class = static_cast<int>(seed % 2);
  return request;
}

// Bumping the global plan version invalidates every sealed execution plan in
// the process; any loop that was replaying re-records at its next epoch and
// continues. Faults injected between drain steps (deterministic) and from a
// concurrent bumper thread (lands mid-training-loop) must both leave the
// served results bitwise-identical to an undisturbed drain.
TEST_F(ServeTest, PlanVersionBumpMidDrainReRecordsWithIdenticalResults) {
  ServeOptions options;
  options.queue_capacity = 8;
  options.coalesce = false;
  options.explainer_epochs = 6;
  options.seed = 99;

  enum class Fault { kNone, kBetweenRequests, kConcurrent };
  auto drain = [&](Fault fault) {
    auto server = MakeServer(options);
    std::vector<std::future<ExplainResponse>> futures;
    for (uint64_t i = 0; i < 4; ++i) {
      auto submitted = server->TrySubmit(MakeRevelioRequest("m1", 50 + i));
      EXPECT_TRUE(submitted.ok());
      futures.push_back(std::move(submitted).value());
    }
    std::atomic<bool> stop{false};
    std::thread bumper;
    if (fault == Fault::kConcurrent) {
      bumper = std::thread([&stop] {
        while (!stop.load()) {
          plan::BumpGlobalPlanVersion();
          std::this_thread::yield();
        }
      });
    }
    while (server->RunOnce().completed > 0) {
      if (fault == Fault::kBetweenRequests) plan::BumpGlobalPlanVersion();
    }
    if (bumper.joinable()) {
      stop.store(true);
      bumper.join();
    }
    std::vector<explain::Explanation> results;
    for (auto& future : futures) {
      ExplainResponse response = future.get();
      EXPECT_TRUE(response.status.ok()) << response.status.ToString();
      results.push_back(std::move(response.explanation));
    }
    EXPECT_EQ(server->stats().completed, 4u);
    return results;
  };

  const std::vector<explain::Explanation> reference = drain(Fault::kNone);
  for (const explain::Explanation& expected : reference) {
    ASSERT_FALSE(expected.edge_scores.empty());
  }
  for (const Fault fault : {Fault::kBetweenRequests, Fault::kConcurrent}) {
    const std::vector<explain::Explanation> faulted = drain(fault);
    ASSERT_EQ(faulted.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(reference[i].edge_scores, faulted[i].edge_scores)
          << "fault mode " << static_cast<int>(fault) << " task " << i;
      EXPECT_EQ(reference[i].flow_scores, faulted[i].flow_scores)
          << "fault mode " << static_cast<int>(fault) << " task " << i;
    }
  }
}

}  // namespace
}  // namespace revelio::serve
