// End-to-end integration tests reproducing the paper's headline claims in
// miniature: train target models on the synthetic benchmarks, explain real
// instances, and check that Revelio (a) recovers planted motifs better than
// chance, (b) beats the random baseline on fidelity, and (c) its
// counterfactual scores are destructive when removed.

#include <gtest/gtest.h>

#include "core/revelio.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "explain/random_explainer.h"

namespace revelio {
namespace {

class BaShapesIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::RunnerConfig config;
    config.num_instances = 4;
    config.explainer_epochs = 100;
    // Skip degenerate micro-subgraphs (roof nodes see only their house):
    // with ~7 edges any removal destroys the prediction, drowning ranking
    // quality in noise.
    config.min_instance_edges = 20;
    prepared_ = new eval::PreparedModel(
        eval::PrepareModel("ba_shapes", gnn::GnnArch::kGcn, config));
    instances_ = new std::vector<eval::EvalInstance>(
        eval::SelectInstances(*prepared_, config, eval::InstanceFilter::kMotifCorrect));
    config_ = config;
  }
  static void TearDownTestSuite() {
    delete prepared_;
    delete instances_;
    prepared_ = nullptr;
    instances_ = nullptr;
  }

  static eval::PreparedModel* prepared_;
  static std::vector<eval::EvalInstance>* instances_;
  static eval::RunnerConfig config_;
};

eval::PreparedModel* BaShapesIntegration::prepared_ = nullptr;
std::vector<eval::EvalInstance>* BaShapesIntegration::instances_ = nullptr;
eval::RunnerConfig BaShapesIntegration::config_;

TEST_F(BaShapesIntegration, ModelReachesPaperAccuracyBand) {
  EXPECT_GT(prepared_->metrics.test_accuracy, 0.8) << "paper Table III: 95.7% for GCN";
}

TEST_F(BaShapesIntegration, InstancesAreMotifTargetsWithGroundTruth) {
  ASSERT_FALSE(instances_->empty());
  for (const auto& instance : *instances_) {
    EXPECT_TRUE(instance.target_in_motif);
    EXPECT_TRUE(instance.correct_prediction);
    EXPECT_FALSE(instance.edge_in_motif.empty());
    EXPECT_GT(instance.num_flows, 0);
  }
}

TEST_F(BaShapesIntegration, RevelioRecoversMotifEdges) {
  core::RevelioOptions options;
  options.epochs = 100;
  core::RevelioExplainer revelio(options);
  const double auc =
      eval::RunAuc(&revelio, *prepared_, *instances_, explain::Objective::kFactual);
  EXPECT_GT(auc, 0.7) << "paper Table IV: 0.783 for Revelio/GCN/BA-Shapes";

  explain::RandomExplainer random(3);
  const double random_auc =
      eval::RunAuc(&random, *prepared_, *instances_, explain::Objective::kFactual);
  EXPECT_GT(auc, random_auc + 0.1);
}

TEST_F(BaShapesIntegration, CounterfactualBeatsRandomOnFidelityPlus) {
  // On the paper's synthetic node datasets factual fidelity is noisy (the
  // paper itself notes edge removal effects "can be arbitrary" there), but
  // the counterfactual direction is robust: removing the flows Revelio
  // marks necessary must hurt more than removing random edges.
  core::RevelioOptions options;
  options.epochs = 100;
  core::RevelioExplainer revelio(options);
  const auto revelio_curve = eval::RunFidelity(&revelio, *prepared_, *instances_,
                                               explain::Objective::kCounterfactual, {0.7});
  explain::RandomExplainer random(5);
  const auto random_curve = eval::RunFidelity(&random, *prepared_, *instances_,
                                              explain::Objective::kCounterfactual, {0.7});
  EXPECT_GT(revelio_curve.values[0], random_curve.values[0] - 0.02);
}

TEST_F(BaShapesIntegration, CounterfactualRemovalIsDestructive) {
  core::RevelioOptions options;
  options.epochs = 100;
  core::RevelioExplainer revelio(options);
  const auto curve = eval::RunFidelity(&revelio, *prepared_, *instances_,
                                       explain::Objective::kCounterfactual, {0.7});
  // Removing the flows Revelio marks necessary must hurt the prediction.
  EXPECT_GT(curve.values[0], 0.1);
}

TEST(MutagIntegration, GinExplanationFindsFunctionalGroupAndBeatsRandom) {
  eval::RunnerConfig config;
  config.num_instances = 4;
  eval::PreparedModel prepared =
      eval::PrepareModel("mutag_like", gnn::GnnArch::kGin, config);
  EXPECT_GE(prepared.metrics.test_accuracy, 0.65) << "paper band: 86.5% on MUTAG";
  const auto instances =
      eval::SelectInstances(prepared, config, eval::InstanceFilter::kMotifCorrect);
  ASSERT_FALSE(instances.empty());
  core::RevelioOptions options;
  options.epochs = 80;
  core::RevelioExplainer revelio(options);
  const double auc =
      eval::RunAuc(&revelio, prepared, instances, explain::Objective::kFactual);
  EXPECT_GT(auc, 0.6);

  // Factual fidelity at high sparsity: Revelio's kept edges preserve the
  // prediction better than a random subset (the Fig. 3 claim in miniature).
  core::RevelioExplainer revelio_fidelity(options);
  const auto revelio_curve = eval::RunFidelity(&revelio_fidelity, prepared, instances,
                                               explain::Objective::kFactual, {0.9});
  explain::RandomExplainer random(5);
  const auto random_curve = eval::RunFidelity(&random, prepared, instances,
                                              explain::Objective::kFactual, {0.9});
  EXPECT_LT(revelio_curve.values[0], random_curve.values[0] + 0.05);
}

TEST(RunnerIntegration, ExplainerRegistryCoversThePaperLineup) {
  const auto names = eval::AllExplainerNames();
  EXPECT_EQ(names.size(), 10u);
  eval::RunnerConfig config;
  for (const auto& name : names) {
    auto explainer = eval::MakeExplainer(name, config);
    ASSERT_NE(explainer, nullptr);
    EXPECT_EQ(explainer->name(), name);
  }
  // Amortized methods are flagged for group training.
  EXPECT_TRUE(eval::NeedsAmortizedTraining(*eval::MakeExplainer("PGExplainer", config)));
  EXPECT_TRUE(eval::NeedsAmortizedTraining(*eval::MakeExplainer("GraphMask", config)));
  EXPECT_FALSE(eval::NeedsAmortizedTraining(*eval::MakeExplainer("Revelio", config)));
}

TEST(RunnerIntegration, ArchDatasetCompatibilityMatchesPaper) {
  EXPECT_FALSE(eval::ArchSupportsDataset(gnn::GnnArch::kGat, "ba_shapes"));
  EXPECT_FALSE(eval::ArchSupportsDataset(gnn::GnnArch::kGat, "tree_cycles"));
  EXPECT_FALSE(eval::ArchSupportsDataset(gnn::GnnArch::kGat, "ba_2motifs"));
  EXPECT_TRUE(eval::ArchSupportsDataset(gnn::GnnArch::kGat, "cora_like"));
  EXPECT_TRUE(eval::ArchSupportsDataset(gnn::GnnArch::kGcn, "ba_shapes"));
}

}  // namespace
}  // namespace revelio
