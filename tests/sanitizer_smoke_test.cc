// AddressSanitizer / UndefinedBehaviorSanitizer smoke test. Compiled twice in
// tests/CMakeLists.txt — once with -fsanitize=address, once with
// -fsanitize=undefined — regardless of REVELIO_SANITIZE, so tier-1 ctest
// always exercises an instrumented pass over the tensor runtime. The workload
// leans on the spots where an out-of-bounds read/write or UB would hide:
// degenerate shapes (0-row, 1x1), gather/scatter indexing at the boundaries,
// segment kernels with empty segments, and parallel chunk boundaries. No
// gtest: exits 0 when the sanitizer stays silent and the value checks hold.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace {

using revelio::tensor::Tensor;
namespace tensor = revelio::tensor;
namespace util = revelio::util;

bool AllFinite(const std::vector<float>& values, const char* what) {
  for (float v : values) {
    if (!std::isfinite(v)) {
      std::fprintf(stderr, "FAIL: non-finite value in %s\n", what);
      return false;
    }
  }
  return true;
}

// Forward+backward over the indexing-heavy ops at boundary shapes.
bool IndexingWorkload() {
  util::Rng rng(11);
  Tensor h = Tensor::Randn(64, 16, &rng).WithRequiresGrad();

  // Gather that touches row 0 and the last row repeatedly.
  std::vector<int> gather_idx;
  for (int i = 0; i < 500; ++i) gather_idx.push_back(i % 2 == 0 ? 0 : 63);
  for (int i = 0; i < 500; ++i) gather_idx.push_back(rng.UniformInt(64));
  Tensor gathered = tensor::GatherRows(h, gather_idx);

  // Scatter into a destination where many rows receive nothing.
  std::vector<int> scatter_idx(gather_idx.size());
  for (size_t i = 0; i < scatter_idx.size(); ++i) {
    scatter_idx[i] = static_cast<int>(i) % 128;
  }
  Tensor scattered = tensor::ScatterAddRows(gathered, scatter_idx, 128);

  // Segment kernels over segments of wildly different sizes (incl. size 1).
  // Segment ids 0..8 each hold one entry; segment 9 holds all the rest.
  std::vector<int> segments(gather_idx.size());
  for (size_t i = 0; i < segments.size(); ++i) segments[i] = i < 10 ? static_cast<int>(i) : 9;
  Tensor logits = Tensor::Randn(static_cast<int>(segments.size()), 1, &rng).WithRequiresGrad();
  Tensor soft = tensor::SegmentSoftmax(logits, segments, 10);
  Tensor maxed = tensor::SegmentMaxRows(gathered, segments, 10);
  Tensor meaned = tensor::SegmentMeanRows(gathered, segments, 10);

  Tensor loss = tensor::Add(tensor::Sum(tensor::RowScale(gathered, soft)),
                            tensor::Add(tensor::Sum(maxed), tensor::Sum(meaned)));
  loss.Backward();

  bool ok = AllFinite(scattered.values(), "scattered");
  ok = AllFinite(h.GradData(), "h grad") && ok;
  return ok;
}

// Degenerate shapes: empty rows and scalars through the elementwise and
// matmul paths (an off-by-one on a 0-row tensor is a classic ASan catch).
bool DegenerateShapeWorkload() {
  util::Rng rng(13);
  Tensor empty = Tensor::Zeros(0, 5).WithRequiresGrad();
  Tensor w = Tensor::Randn(5, 3, &rng).WithRequiresGrad();
  Tensor empty_out = tensor::MatMul(empty, w);
  if (empty_out.rows() != 0 || empty_out.cols() != 3) {
    std::fprintf(stderr, "FAIL: empty matmul shape\n");
    return false;
  }
  (void)tensor::Relu(empty_out);
  (void)tensor::RowSoftmax(empty_out);
  (void)tensor::ScatterAddRows(empty_out, {}, 4);

  Tensor scalar = Tensor::FromData(1, 1, {0.75f}).WithRequiresGrad();
  Tensor chained = tensor::Log(tensor::Exp(tensor::Tanh(scalar)));
  tensor::Sum(tensor::Mul(chained, chained)).Backward();
  return AllFinite(scalar.GradData(), "scalar grad");
}

// Parallel chunk boundaries: grain sizes that do not divide the range evenly
// force first/last-chunk edge handling in every worker.
bool ParallelBoundaryWorkload() {
  bool ok = true;
  for (int threads : {1, 3, 4}) {
    util::SetNumThreads(threads);
    std::vector<int> hits(10007, 0);
    util::ParallelFor(0, static_cast<int64_t>(hits.size()), 97,
                      [&hits](int64_t begin, int64_t end) {
                        for (int64_t i = begin; i < end; ++i) ++hits[i];
                      });
    for (size_t i = 0; i < hits.size(); ++i) {
      if (hits[i] != 1) {
        std::fprintf(stderr, "FAIL: threads=%d index %zu hit %d times\n", threads, i, hits[i]);
        ok = false;
        break;
      }
    }
  }
  util::SetNumThreads(1);
  return ok;
}

}  // namespace

int main() {
  bool ok = IndexingWorkload();
  ok = DegenerateShapeWorkload() && ok;
  ok = ParallelBoundaryWorkload() && ok;
  if (ok) std::printf("sanitizer_smoke_test: OK\n");
  return ok ? 0 : 1;
}
