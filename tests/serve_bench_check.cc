// Standalone validator for the serving-trace bench result, used as a ctest
// fixture after `bench_serve --quick`:
//   serve_bench_check <BENCH_serve.json>
// Exit 0 when the file carries the shared BENCH_*.json envelope, the trace
// point exists, the server's observed accepted/rejected/timed-out/served
// counts EXACTLY match the oracle-computed expectations for the seeded
// trace, every served explanation was bitwise-equal to batch ExplainAll,
// the warm-pool steady state held (warm_misses == 0 with warm_hits > 0),
// and the measured p99 latency stayed within the stated SLO bound. Exit 1
// on validation failure, 2 on usage/IO errors.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

using revelio::obs::JsonValue;

const JsonValue* RequireNumber(const JsonValue& object, const char* key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_number()) {
    std::fprintf(stderr, "serve_bench_check: missing numeric \"%s\"\n", key);
    return nullptr;
  }
  return value;
}

bool RequireExactMatch(const JsonValue& point, const char* expected_key,
                       const char* observed_key) {
  const JsonValue* expected = RequireNumber(point, expected_key);
  const JsonValue* observed = RequireNumber(point, observed_key);
  if (expected == nullptr || observed == nullptr) return false;
  if (expected->number_value != observed->number_value) {
    std::fprintf(stderr,
                 "serve_bench_check: %s=%.0f does not match oracle %s=%.0f\n",
                 observed_key, observed->number_value, expected_key,
                 expected->number_value);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: serve_bench_check <BENCH_serve.json>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "serve_bench_check: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  JsonValue root;
  std::string error;
  if (!revelio::obs::ParseJson(buffer.str(), &root, &error)) {
    std::fprintf(stderr, "serve_bench_check: %s is malformed JSON: %s\n", argv[1],
                 error.c_str());
    return 1;
  }
  if (!root.is_object()) {
    std::fprintf(stderr, "serve_bench_check: top level is not an object\n");
    return 1;
  }

  // Shared envelope (bench/bench_common.h WriteBenchJson).
  const JsonValue* schema = root.Find("schema_version");
  if (schema == nullptr || !schema->is_number() || schema->number_value != 1) {
    std::fprintf(stderr, "serve_bench_check: missing schema_version 1\n");
    return 1;
  }
  const JsonValue* bench = root.Find("bench");
  if (bench == nullptr || !bench->is_string() || bench->string_value != "serve_trace") {
    std::fprintf(stderr, "serve_bench_check: bench name is not serve_trace\n");
    return 1;
  }
  const JsonValue* data = root.Find("data");
  if (data == nullptr || !data->is_object()) {
    std::fprintf(stderr, "serve_bench_check: missing data object\n");
    return 1;
  }
  const JsonValue* requests = RequireNumber(*data, "requests");
  if (requests == nullptr || requests->number_value <= 0.0) {
    std::fprintf(stderr, "serve_bench_check: empty trace\n");
    return 1;
  }
  const JsonValue* points = data->Find("points");
  if (points == nullptr || !points->is_array() || points->array_items.empty()) {
    std::fprintf(stderr, "serve_bench_check: missing non-empty data.points array\n");
    return 1;
  }
  const JsonValue& point = points->array_items[0];
  if (!point.is_object()) {
    std::fprintf(stderr, "serve_bench_check: point 0 is not an object\n");
    return 1;
  }

  // Admission counts must match the trace's independently computed oracle
  // EXACTLY — a drift of one request means the queue lost, duplicated, or
  // misclassified an admission decision.
  if (!RequireExactMatch(point, "expected_accepted", "observed_accepted") ||
      !RequireExactMatch(point, "expected_rejected", "observed_rejected") ||
      !RequireExactMatch(point, "expected_timed_out", "observed_timed_out") ||
      !RequireExactMatch(point, "expected_served", "observed_served")) {
    return 1;
  }
  const JsonValue* counts_match = point.Find("counts_match");
  if (counts_match == nullptr || counts_match->type != JsonValue::Type::kBool ||
      !counts_match->bool_value) {
    std::fprintf(stderr, "serve_bench_check: per-request outcomes diverged from oracle\n");
    return 1;
  }

  // Determinism: serving is a scheduling layer, never a numerics change.
  const JsonValue* bitwise = point.Find("bitwise_equal");
  if (bitwise == nullptr || bitwise->type != JsonValue::Type::kBool) {
    std::fprintf(stderr, "serve_bench_check: missing bool bitwise_equal\n");
    return 1;
  }
  if (!bitwise->bool_value) {
    std::fprintf(stderr,
                 "serve_bench_check: served explanations diverged from batch ExplainAll\n");
    return 1;
  }
  const JsonValue* served_checked = RequireNumber(point, "served_checked");
  if (served_checked == nullptr || served_checked->number_value <= 0.0) {
    std::fprintf(stderr, "serve_bench_check: no served explanations were compared\n");
    return 1;
  }

  // Warm-pool steady state (PR 5 contract carried into serving): after the
  // warmup window every acquisition is served from the free lists.
  const JsonValue* warm_misses = RequireNumber(point, "warm_misses");
  const JsonValue* warm_hits = RequireNumber(point, "warm_hits");
  if (warm_misses == nullptr || warm_hits == nullptr) return 1;
  if (warm_misses->number_value != 0.0) {
    std::fprintf(stderr,
                 "serve_bench_check: %.0f pool misses in steady-state serving (expected 0)\n",
                 warm_misses->number_value);
    return 1;
  }
  if (warm_hits->number_value <= 0.0) {
    std::fprintf(stderr,
                 "serve_bench_check: no pool hits in steady-state serving — the warm "
                 "pool is not wired in\n");
    return 1;
  }

  // SLO envelope: p99 latency within the stated bound at the quick trace size.
  const JsonValue* p99 = RequireNumber(point, "p99_seconds");
  const JsonValue* p99_bound = RequireNumber(point, "p99_bound_seconds");
  const JsonValue* speedup = RequireNumber(point, "serve_speedup");
  if (p99 == nullptr || p99_bound == nullptr || speedup == nullptr) return 1;
  if (p99->number_value > p99_bound->number_value) {
    std::fprintf(stderr, "serve_bench_check: p99 latency %.4fs exceeds the %.4fs bound\n",
                 p99->number_value, p99_bound->number_value);
    return 1;
  }

  std::printf(
      "serve_bench_check: %s ok (%.0f requests, oracle-exact admission, bitwise-equal "
      "results, 0 steady-state misses, p99 %.4fs <= %.1fs, speedup %.2fx)\n",
      argv[1], requests->number_value, p99->number_value, p99_bound->number_value,
      speedup->number_value);
  return 0;
}
