// Flight-recorder tests: bounded memory across wraps, capacity respected
// under 16-thread write contention, the disabled no-op contract, name
// interning, Chrome-trace export parsed back for well-formedness, and the
// crash-dump path (a death test raises SIGABRT and the parent verifies the
// dump the handler left behind).

#include "obs/recorder.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"

namespace revelio {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string TempPath(const char* name) { return ::testing::TempDir() + "/" + name; }

// Every test starts from an empty ring with recording on, and leaves the
// global switch the way the process default had it (on).
class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetFlightEnabled(true);
    obs::FlightRecorder::Global().Clear();
  }
  void TearDown() override {
    obs::SetFlightEnabled(true);
    obs::FlightRecorder::Global().Clear();
  }
};

TEST_F(RecorderTest, RecordsAreCollectable) {
  obs::RecordPhase("test.phase.a");
  obs::RecordFlightEvent(obs::FlightEventKind::kCounterDelta, "test.counter", 3.0);
  const std::vector<obs::FlightEvent> events = obs::FlightRecorder::Global().Collect();
  ASSERT_EQ(events.size(), 2u);
  bool saw_phase = false;
  bool saw_counter = false;
  for (const obs::FlightEvent& event : events) {
    if (std::string(event.name) == "test.phase.a") {
      saw_phase = true;
      EXPECT_EQ(event.kind, obs::FlightEventKind::kPhase);
    }
    if (std::string(event.name) == "test.counter") {
      saw_counter = true;
      EXPECT_EQ(event.kind, obs::FlightEventKind::kCounterDelta);
      EXPECT_EQ(event.value, 3.0);
    }
  }
  EXPECT_TRUE(saw_phase);
  EXPECT_TRUE(saw_counter);
}

// The ring's memory bound: recording far more events than the capacity must
// retain at most `capacity()` of them while total_recorded keeps counting.
TEST_F(RecorderTest, WrapKeepsMemoryBounded) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  const size_t capacity = recorder.capacity();
  ASSERT_GT(capacity, 0u);
  const size_t to_record = capacity * 2 + 1000;
  for (size_t i = 0; i < to_record; ++i) {
    recorder.Record(obs::FlightEventKind::kPhase, "test.wrap");
  }
  EXPECT_EQ(recorder.total_recorded(), to_record);
  const std::vector<obs::FlightEvent> events = recorder.Collect();
  EXPECT_LE(events.size(), capacity);
  // The single-threaded writer landed on one shard: that shard's whole ring
  // is retained, so the snapshot is non-trivial even after two wraps.
  EXPECT_GE(events.size(), capacity / 32);
  for (const obs::FlightEvent& event : events) {
    EXPECT_STREQ(event.name, "test.wrap");
  }
}

// 16 concurrent writers hammer the ring well past capacity; the retained set
// must stay bounded and every surviving record must be intact.
TEST_F(RecorderTest, SixteenThreadContentionStaysBounded) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  const size_t capacity = recorder.capacity();
  constexpr int kThreads = 16;
  const size_t per_thread = capacity / 4 + 257;  // total ~4x capacity
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([per_thread, t] {
      for (size_t i = 0; i < per_thread; ++i) {
        obs::FlightRecorder::Global().Record(obs::FlightEventKind::kCounterDelta,
                                             "test.contention", static_cast<double>(t));
      }
    });
  }
  for (std::thread& writer : writers) writer.join();

  EXPECT_EQ(recorder.total_recorded(), static_cast<uint64_t>(kThreads) * per_thread);
  const std::vector<obs::FlightEvent> events = recorder.Collect();
  EXPECT_LE(events.size(), capacity);
  EXPECT_GT(events.size(), 0u);
  for (const obs::FlightEvent& event : events) {
    ASSERT_NE(event.name, nullptr);
    EXPECT_STREQ(event.name, "test.contention");
    EXPECT_GE(event.value, 0.0);
    EXPECT_LT(event.value, static_cast<double>(kThreads));
  }
}

TEST_F(RecorderTest, DisabledRecordingIsANoOp) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  obs::SetFlightEnabled(false);
  EXPECT_FALSE(obs::FlightEnabled());
  const uint64_t before = recorder.total_recorded();
  for (int i = 0; i < 1000; ++i) {
    obs::RecordPhase("test.disabled");
    recorder.Record(obs::FlightEventKind::kSpanBegin, "test.disabled.direct");
  }
  EXPECT_EQ(recorder.total_recorded(), before);
  EXPECT_TRUE(recorder.Collect().empty());
  obs::SetFlightEnabled(true);
  obs::RecordPhase("test.reenabled");
  EXPECT_EQ(recorder.total_recorded(), before + 1);
}

TEST_F(RecorderTest, InternedNamesAreStable) {
  const char* a = obs::InternFlightName("test.intern.name");
  const char* b = obs::InternFlightName(std::string("test.intern.") + "name");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "test.intern.name");
  const char* other = obs::InternFlightName("test.intern.other");
  EXPECT_NE(a, other);
}

TEST_F(RecorderTest, ClearDropsRetainedEvents) {
  obs::RecordPhase("test.clear");
  ASSERT_FALSE(obs::FlightRecorder::Global().Collect().empty());
  obs::FlightRecorder::Global().Clear();
  EXPECT_TRUE(obs::FlightRecorder::Global().Collect().empty());
  EXPECT_EQ(obs::FlightRecorder::Global().total_recorded(), 0u);
}

TEST_F(RecorderTest, ChromeTraceExportParsesBack) {
  obs::RecordFlightEvent(obs::FlightEventKind::kSpanBegin, "test.trace.span");
  obs::RecordFlightEvent(obs::FlightEventKind::kSpanEnd, "test.trace.span", 12.5);
  obs::RecordFlightEvent(obs::FlightEventKind::kCounterDelta, "test.trace.counter", 2.0);
  obs::RecordFlightEvent(obs::FlightEventKind::kPoolHighWater, "test.trace.pool", 4096.0);
  obs::RecordPhase("test.trace.phase");

  const std::string path = TempPath("flight_export.json");
  ASSERT_TRUE(obs::FlightRecorder::Global().WriteChromeTrace(path));
  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(ReadFile(path), &root, &error)) << error;

  const obs::JsonValue* other = root.Find("otherData");
  ASSERT_NE(other, nullptr);
  ASSERT_NE(other->Find("capacity"), nullptr);
  EXPECT_EQ(other->Find("capacity")->number_value,
            static_cast<double>(obs::FlightRecorder::Global().capacity()));
  ASSERT_NE(other->Find("total_recorded"), nullptr);
  EXPECT_EQ(other->Find("total_recorded")->number_value, 5.0);

  const obs::JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array_items.size(), 5u);
  std::set<std::string> phases;
  for (const obs::JsonValue& event : events->array_items) {
    ASSERT_TRUE(event.is_object());
    ASSERT_NE(event.Find("name"), nullptr);
    ASSERT_NE(event.Find("ph"), nullptr);
    ASSERT_NE(event.Find("ts"), nullptr);
    ASSERT_NE(event.Find("tid"), nullptr);
    const std::string name = event.Find("name")->string_value;
    const std::string ph = event.Find("ph")->string_value;
    phases.insert(ph);
    if (name == "test.trace.counter") {
      EXPECT_EQ(ph, "C");
      ASSERT_NE(event.Find("args"), nullptr);
      EXPECT_EQ(event.Find("args")->Find("delta")->number_value, 2.0);
    }
    if (name == "test.trace.pool") {
      EXPECT_EQ(ph, "i");
      ASSERT_NE(event.Find("args"), nullptr);
      EXPECT_EQ(event.Find("args")->Find("bytes_peak")->number_value, 4096.0);
    }
  }
  EXPECT_TRUE(phases.count("B"));
  EXPECT_TRUE(phases.count("E"));
  EXPECT_TRUE(phases.count("C"));
  EXPECT_TRUE(phases.count("i"));
  std::remove(path.c_str());
}

TEST_F(RecorderTest, DumpWithoutPathReportsFalse) {
  obs::FlightRecorder::Global().SetDumpPath("");
  EXPECT_FALSE(obs::DumpFlightRecord());
}

using RecorderDeathTest = RecorderTest;

// The crash path end to end: the death-test child arms the handler, records
// a few events, and aborts; the handler must leave a parseable Chrome trace
// at the dump path before the default SIGABRT action kills the child.
TEST_F(RecorderDeathTest, CrashHandlerWritesDump) {
  const std::string path = TempPath("flight_crash_dump.json");
  std::remove(path.c_str());
  EXPECT_EXIT(
      {
        obs::FlightRecorder::Global().SetDumpPath(path);
        obs::InstallCrashHandler();
        obs::RecordPhase("test.crash.marker");
        std::abort();
      },
      ::testing::KilledBySignal(SIGABRT), "");

  obs::JsonValue root;
  std::string error;
  const std::string dumped = ReadFile(path);
  ASSERT_FALSE(dumped.empty()) << "crash handler left no dump at " << path;
  ASSERT_TRUE(obs::ParseJson(dumped, &root, &error)) << error;
  const obs::JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_marker = false;
  for (const obs::JsonValue& event : events->array_items) {
    const obs::JsonValue* name = event.Find("name");
    if (name != nullptr && name->string_value == "test.crash.marker") saw_marker = true;
  }
  EXPECT_TRUE(saw_marker);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace revelio
