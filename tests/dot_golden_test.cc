// Golden-file coverage for the Graphviz exporter: the rendered DOT text for a
// fixture graph exercising every style branch (target node, motif nodes,
// selected / missed-ground-truth / plain edges, directed-pair merging) must
// stay byte-identical to tests/golden/explanation.dot. Run with
// REVELIO_UPDATE_GOLDEN=1 to regenerate after an intentional format change.
// Also structurally validates generated artifacts/fig6_a_*.dot files when
// bench_fig6_visualization has produced them.

#ifndef REVELIO_SOURCE_DIR
#error "compile with -DREVELIO_SOURCE_DIR=\"<repo root>\""
#endif

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/dot_export.h"
#include "graph/graph.h"

namespace revelio::graph {
namespace {

std::string GoldenPath() {
  return std::string(REVELIO_SOURCE_DIR) + "/tests/golden/explanation.dot";
}

std::string ReadFile(const std::string& path) {
  std::ifstream file(path);
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

// House motif (0-1-2) on a tail (3-4-5): mixed undirected pairs and one-way
// edges so the pair-merging path is exercised alongside plain edges.
Graph FixtureGraph() {
  Graph g(6);
  g.AddUndirectedEdge(0, 1);  // edges 0,1
  g.AddUndirectedEdge(1, 2);  // edges 2,3
  g.AddEdge(2, 0);            // edge 4, one direction only
  g.AddEdge(3, 2);            // edge 5
  g.AddEdge(4, 3);            // edge 6
  g.AddEdge(5, 4);            // edge 7
  return g;
}

DotStyle FixtureStyle(const Graph& g) {
  DotStyle style;
  style.edge_selected.assign(g.num_edges(), 0);
  style.edge_selected[1] = 1;  // 1->0: merged pair must pick up the reverse flag
  style.edge_selected[4] = 1;  // 2->0 selected
  style.edge_ground_truth.assign(g.num_edges(), 0);
  style.edge_ground_truth[2] = 1;  // 1->2 in the motif but not selected: dashed red
  style.edge_ground_truth[4] = 1;  // selected wins over ground-truth styling
  style.node_in_motif = {1, 1, 1, 0, 0, 0};
  style.target_node = 0;
  return style;
}

TEST(DotGoldenTest, RenderedDotMatchesGoldenFile) {
  const Graph g = FixtureGraph();
  const std::string rendered = ToDot(g, FixtureStyle(g));

  if (std::getenv("REVELIO_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << rendered;
    GTEST_SKIP() << "golden file regenerated at " << GoldenPath();
  }

  const std::string golden = ReadFile(GoldenPath());
  ASSERT_FALSE(golden.empty()) << "missing golden file " << GoldenPath()
                               << "; run with REVELIO_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(rendered, golden)
      << "DOT output drifted from the golden file. If the change is intentional, "
         "regenerate with REVELIO_UPDATE_GOLDEN=1 and review the diff.";
}

TEST(DotGoldenTest, DirectedModeRendersDigraph) {
  const Graph g = FixtureGraph();
  DotStyle style = FixtureStyle(g);
  style.merge_directed_pairs = false;
  const std::string rendered = ToDot(g, style);
  EXPECT_EQ(rendered.rfind("digraph explanation {", 0), 0u);
  // Without merging, every directed edge is emitted.
  size_t arrows = 0;
  for (size_t pos = rendered.find(" -> "); pos != std::string::npos;
       pos = rendered.find(" -> ", pos + 1)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, static_cast<size_t>(g.num_edges()));
}

// Generated Fig. 6a artifacts (artifacts/fig6_a_*.dot, written by
// bench_fig6_visualization) must stay structurally valid DOT: correct
// header/footer, every statement terminated, and node ids consistent between
// declarations and edges. Skipped when the bench has not been run — the
// artifacts directory is gitignored, not committed.
TEST(DotGoldenTest, GeneratedFig6ArtifactsAreWellFormed) {
  const std::vector<std::string> methods = {
      "Revelio", "GradCAM", "PGExplainer", "GNN-LRP",     "GraphMask",
      "FlowX",   "DeepLIFT", "SubgraphX",  "GNNExplainer", "PGMExplainer"};
  int validated = 0;
  for (const std::string& method : methods) {
    const std::string path =
        std::string(REVELIO_SOURCE_DIR) + "/artifacts/fig6_a_" + method + ".dot";
    const std::string text = ReadFile(path);
    if (text.empty()) continue;  // bench not run for this method
    ++validated;
    EXPECT_EQ(text.rfind("graph explanation {", 0), 0u) << path;
    EXPECT_NE(text.find("\n}\n"), std::string::npos) << path;

    std::istringstream lines(text);
    std::string line;
    int declared_nodes = 0;
    int edges = 0;
    while (std::getline(lines, line)) {
      if (line.rfind("  ", 0) != 0) continue;
      EXPECT_EQ(line.back(), ';') << path << ": unterminated line: " << line;
      if (line.find(" -- ") != std::string::npos) {
        ++edges;
        const int src = std::atoi(line.c_str() + 2);
        const int dst = std::atoi(line.c_str() + line.find(" -- ") + 4);
        EXPECT_LT(src, declared_nodes) << path << ": edge from undeclared node";
        EXPECT_LT(dst, declared_nodes) << path << ": edge to undeclared node";
      } else if (line.find("fillcolor") != std::string::npos) {
        ++declared_nodes;
      }
    }
    EXPECT_GT(declared_nodes, 0) << path;
    EXPECT_GT(edges, 0) << path;
  }
  if (validated == 0) {
    GTEST_SKIP() << "no artifacts/fig6_a_*.dot present; run bench_fig6_visualization "
                    "from the repo root to generate them";
  }
}

}  // namespace
}  // namespace revelio::graph
