// Tests for the nn module: parameter registry, Linear/MLP, losses, optimizers.

#include <cmath>

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace revelio::nn {
namespace {

using tensor::Tensor;

TEST(ModuleTest, ParameterRegistryCollectsRecursively) {
  util::Rng rng(1);
  Mlp mlp({4, 8, 2}, &rng);
  // Two Linear layers, each with weight + bias.
  EXPECT_EQ(mlp.Parameters().size(), 4u);
  EXPECT_EQ(mlp.NumParameters(), 4 * 8 + 8 + 8 * 2 + 2);
  for (const auto& p : mlp.Parameters()) EXPECT_TRUE(p.requires_grad());
}

TEST(LinearTest, ForwardMatchesManualComputation) {
  util::Rng rng(2);
  Linear linear(2, 2, &rng);
  Tensor x = Tensor::FromData(1, 2, {1.0f, -1.0f});
  Tensor y = linear.Forward(x);
  const auto& w = linear.weight();
  const auto& b = linear.bias();
  for (int c = 0; c < 2; ++c) {
    const float expected = w.At(0, c) * 1.0f + w.At(1, c) * -1.0f + b.At(0, c);
    EXPECT_NEAR(y.At(0, c), expected, 1e-5);
  }
}

TEST(LinearTest, NoBiasVariant) {
  util::Rng rng(3);
  Linear linear(3, 2, &rng, /*bias=*/false);
  EXPECT_EQ(linear.Parameters().size(), 1u);
  Tensor zero = Tensor::Zeros(1, 3);
  Tensor y = linear.Forward(zero);
  EXPECT_EQ(y.At(0, 0), 0.0f);
  EXPECT_EQ(y.At(0, 1), 0.0f);
}

TEST(MlpTest, HiddenReluIsApplied) {
  util::Rng rng(4);
  Mlp mlp({2, 4, 1}, &rng);
  EXPECT_EQ(mlp.num_layers(), 2);
  // Output is a linear function of the hidden ReLU activations; just check
  // the forward runs and shape is right.
  Tensor y = mlp.Forward(Tensor::Randn(5, 2, &rng));
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 1);
}

TEST(LossTest, CrossEntropyOfUniformLogits) {
  Tensor logits = Tensor::Zeros(4, 3);
  Tensor loss = CrossEntropyFromLogits(logits, {0, 1, 2, 0});
  EXPECT_NEAR(loss.Value(), std::log(3.0f), 1e-5);
}

TEST(LossTest, ClassProbabilityMatchesSoftmax) {
  Tensor logits = Tensor::FromData(2, 3, {1.0f, 2.0f, 0.0f, 0.0f, 0.0f, 5.0f});
  const auto probs = SoftmaxRow(logits, 0);
  EXPECT_NEAR(ClassProbability(logits, 0, 1).Value(), probs[1], 1e-5);
}

TEST(LossTest, FactualObjectiveIsNegLogProb) {
  Tensor logits = Tensor::FromData(1, 2, {0.3f, 1.7f});
  const double p = SoftmaxRow(logits, 0)[1];
  EXPECT_NEAR(FactualObjective(logits, 0, 1).Value(), -std::log(p), 1e-5);
}

TEST(LossTest, CounterfactualObjectiveIsNegLogOneMinusProb) {
  Tensor logits = Tensor::FromData(1, 2, {0.3f, 1.7f});
  const double p = SoftmaxRow(logits, 0)[1];
  EXPECT_NEAR(CounterfactualObjective(logits, 0, 1).Value(), -std::log(1.0 - p), 1e-4);
}

TEST(LossTest, ObjectivesAreDifferentiable) {
  util::Rng rng(5);
  Tensor logits = Tensor::Randn(2, 3, &rng).WithRequiresGrad();
  revelio::testing::CheckGradient(
      logits, [&](const Tensor& x) { return FactualObjective(x, 1, 2); });
  revelio::testing::CheckGradient(
      logits, [&](const Tensor& x) { return CounterfactualObjective(x, 1, 2); });
}

TEST(LossTest, AccuracyCountsArgmaxMatches) {
  Tensor logits = Tensor::FromData(3, 2, {2.0f, 1.0f, 0.0f, 3.0f, 5.0f, 4.0f});
  EXPECT_NEAR(Accuracy(logits, {0, 1, 1}), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(Accuracy(logits, {0, 1, 1}, {0, 1}), 1.0, 1e-9);
  EXPECT_EQ(ArgmaxRow(logits, 2), 0);
}

TEST(OptimizerTest, SgdDescendsQuadratic) {
  Tensor x = Tensor::Full(1, 1, 5.0f).WithRequiresGrad();
  Sgd sgd({x}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    sgd.ZeroGrad();
    Tensor loss = tensor::Mul(x, x);
    loss.Backward();
    sgd.Step();
  }
  EXPECT_NEAR(x.Value(), 0.0f, 1e-3);
}

TEST(OptimizerTest, AdamDescendsQuadraticWithOffset) {
  // loss = (x - 3)^2 -> minimum at 3.
  Tensor x = Tensor::Full(1, 1, -2.0f).WithRequiresGrad();
  Adam adam({x}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    adam.ZeroGrad();
    Tensor diff = tensor::AddScalar(x, -3.0f);
    Tensor loss = tensor::Mul(diff, diff);
    loss.Backward();
    adam.Step();
  }
  EXPECT_NEAR(x.Value(), 3.0f, 1e-2);
}

TEST(OptimizerTest, WeightDecayShrinksParameters) {
  Tensor x = Tensor::Full(1, 1, 1.0f).WithRequiresGrad();
  Sgd sgd({x}, 0.1f, /*weight_decay=*/0.5f);
  // Zero gradient: only decay acts.
  sgd.ZeroGrad();
  Tensor loss = tensor::MulScalar(x, 0.0f);
  loss.Backward();
  sgd.Step();
  EXPECT_NEAR(x.Value(), 1.0f - 0.1f * 0.5f, 1e-6);
}

TEST(OptimizerTest, SkipsParametersWithoutGradients) {
  Tensor used = Tensor::Full(1, 1, 1.0f).WithRequiresGrad();
  Tensor unused = Tensor::Full(1, 1, 7.0f).WithRequiresGrad();
  Adam adam({used, unused}, 0.1f);
  adam.ZeroGrad();
  Tensor loss = tensor::Mul(used, used);
  loss.Backward();
  adam.Step();
  EXPECT_EQ(unused.Value(), 7.0f);
  EXPECT_LT(used.Value(), 1.0f);
}

}  // namespace
}  // namespace revelio::nn
