// Tests for the util substrate: RNG, flags, status, tables, timer, logging.

#include <cmath>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace revelio::util {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
  bool any_diff = false;
  Rng a2(123);
  for (int i = 0; i < 16; ++i) any_diff |= (a2.NextUint64() != c.NextUint64());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double total = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    total += u;
  }
  EXPECT_NEAR(total / 10000, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.UniformInt(5)];
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(11);
  double mean = 0.0, var = 0.0;
  const int n = 20000;
  std::vector<double> samples(n);
  for (auto& s : samples) s = rng.Normal();
  for (double s : samples) mean += s;
  mean /= n;
  for (double s : samples) var += (s - mean) * (s - mean);
  var /= n;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
  EXPECT_NEAR(rng.Normal(10.0, 0.0), 10.0, 1e-12);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(15);
  std::vector<double> weights = {1.0, 3.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[1] / 8000.0, 0.75, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> values(50);
  for (int i = 0; i < 50; ++i) values[i] = i;
  rng.Shuffle(&values);
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  const auto sample = rng.SampleWithoutReplacement(20, 8);
  EXPECT_EQ(sample.size(), 8u);
  std::vector<char> seen(20, 0);
  for (int s : sample) {
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 20);
    EXPECT_FALSE(seen[s]);
    seen[s] = 1;
  }
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"positional", "--alpha=0.5", "--epochs", "20",
                        "--name",     "revelio",     "--on"};
  // argv[0] is the program name; a bare leading token is positional.
  const char* argv_full[] = {"prog",    "positional", "--alpha=0.5", "--epochs",
                             "20",      "--name",     "revelio",     "--on"};
  (void)argv;
  Flags flags(8, const_cast<char**>(argv_full));
  EXPECT_NEAR(flags.GetDouble("alpha", 0.0), 0.5, 1e-12);
  EXPECT_EQ(flags.GetInt("epochs", 0), 20);
  EXPECT_TRUE(flags.GetBool("on", false)) << "trailing bool flag";
  EXPECT_EQ(flags.GetString("name", ""), "revelio");
  EXPECT_EQ(flags.GetString("missing", "fallback"), "fallback");
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
  EXPECT_TRUE(flags.Has("alpha"));
  EXPECT_FALSE(flags.Has("beta"));
}

TEST(FlagsTest, SpaceFormGreedilyConsumesNextToken) {
  // Documented behavior: `--flag value` binds the next non-flag token, so a
  // boolean flag followed by a positional must use `--flag=true` instead.
  const char* argv[] = {"prog", "--verbose", "positional"};
  Flags flags(3, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetString("verbose", ""), "positional");
  EXPECT_TRUE(flags.positional().empty());
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "Ok");
  const Status error = Status::InvalidArgument("bad k");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(error.ToString(), "InvalidArgument: bad k");
  EXPECT_EQ(std::string(StatusCodeName(StatusCode::kNotFound)), "NotFound");
}

TEST(StatusTest, StatusOrHoldsValueOrError) {
  StatusOr<int> ok_value(42);
  EXPECT_TRUE(ok_value.ok());
  EXPECT_EQ(ok_value.value(), 42);
  StatusOr<int> error(Status::NotFound("missing"));
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
}

TEST(TablePrinterTest, AlignsAndFormats) {
  TablePrinter table({"a", "bbb"});
  table.AddRow({"x", "1"});
  table.AddRow({"long", "2"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("| a    | bbb |"), std::string::npos);
  EXPECT_NE(rendered.find("| long | 2   |"), std::string::npos);
  EXPECT_EQ(TablePrinter::FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FormatDouble(std::nan(""), 2), "-");
}

TEST(TablePrinterTest, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/revelio_test.csv";
  ASSERT_TRUE(WriteCsv(path, {"h1", "h2"}, {{"1", "2"}, {"3", "4"}}));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h1,h2");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
}

TEST(TimerTest, MeasuresElapsed) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += i;
  const double after_work = timer.ElapsedSeconds();
  EXPECT_GT(after_work, 0.0);
  // Steady-clock monotonicity: a later reading never decreases.
  EXPECT_GE(timer.ElapsedSeconds(), after_work);

  // Reset rebases the epoch. Checked against a reference timer constructed
  // BEFORE the Reset: the reset timer's epoch is later, so reading it first
  // must give the smaller value. This ordering holds under arbitrary
  // scheduler stalls, unlike an absolute wall-clock bound.
  Timer reference;
  timer.Reset();
  const double reset_reading = timer.ElapsedSeconds();     // read first
  const double reference_reading = reference.ElapsedSeconds();
  EXPECT_LE(reset_reading, reference_reading);
}

TEST(LoggingTest, LevelGate) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  LOG_INFO << "suppressed";  // must not crash
  SetLogLevel(original);
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ CHECK(1 == 2) << "boom"; }, "CHECK failed");
  EXPECT_DEATH({ CHECK_EQ(3, 4); }, "3 vs 4");
}

}  // namespace
}  // namespace revelio::util
