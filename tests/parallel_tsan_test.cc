// ThreadSanitizer smoke test for the thread pool and the parallel tensor
// kernels. Built with -fsanitize=thread regardless of the REVELIO_SANITIZE
// setting (see tests/CMakeLists.txt) and run as part of tier-1 ctest, so a
// data race in ParallelFor or any owner-computes kernel fails the suite. No
// gtest: the binary exits 0 when TSan stays silent (TSan aborts with a
// non-zero exit on the first race) and the few logic checks below hold.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "serve/queue.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/status.h"

namespace {

using revelio::tensor::Tensor;

bool ExpectEqual(const std::vector<float>& a, const std::vector<float>& b, const char* what) {
  if (a == b) return true;
  std::fprintf(stderr, "FAIL: %s differs between thread counts\n", what);
  return false;
}

std::vector<float> TensorWorkload() {
  revelio::util::Rng rng(3);
  Tensor a = Tensor::Randn(96, 131, &rng).WithRequiresGrad();
  Tensor b = Tensor::Randn(131, 64, &rng).WithRequiresGrad();
  Tensor c = revelio::tensor::Relu(revelio::tensor::MatMul(a, b));

  const int edges = 3000;
  std::vector<int> src(edges), dst(edges);
  for (int e = 0; e < edges; ++e) {
    src[e] = rng.UniformInt(96);
    dst[e] = rng.UniformInt(96);
  }
  Tensor gathered = revelio::tensor::GatherRows(c, src);
  Tensor scattered = revelio::tensor::ScatterAddRows(gathered, dst, 96);
  revelio::tensor::Sum(scattered).Backward();

  std::vector<float> flat = scattered.values();
  const std::vector<float> ga = a.GradData();
  flat.insert(flat.end(), ga.begin(), ga.end());
  return flat;
}

}  // namespace

int main() {
  namespace util = revelio::util;
  bool ok = true;

  // Raw ParallelFor: overlapping claims or a lost chunk would trip TSan or
  // the coverage check.
  util::SetNumThreads(4);
  std::vector<int> hits(10000, 0);
  util::ParallelFor(0, static_cast<int64_t>(hits.size()), 7,
                    [&hits](int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) ++hits[i];
                    });
  for (size_t i = 0; i < hits.size(); ++i) {
    if (hits[i] != 1) {
      std::fprintf(stderr, "FAIL: index %zu hit %d times\n", i, hits[i]);
      ok = false;
      break;
    }
  }

  // Concurrent independent ParallelFor callers sharing the pool.
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([] { (void)TensorWorkload(); });
  }
  for (auto& caller : callers) caller.join();

  // Per-thread tensor pools under concurrency: each raw thread hammers its
  // own thread-local free lists (acquire/release via full workloads, then an
  // explicit Trim). The pools are unsynchronized by design — TSan verifies no
  // thread ever touches another thread's lists.
  {
    std::vector<std::thread> pool_users;
    for (int t = 0; t < 4; ++t) {
      pool_users.emplace_back([] {
        for (int repeat = 0; repeat < 3; ++repeat) (void)TensorWorkload();
        if (auto* pool = revelio::tensor::TensorPool::ThreadLocal()) pool->Trim();
      });
    }
    for (auto& user : pool_users) user.join();

    // Cross-thread release: a tensor created on this thread is destroyed on a
    // worker, so its storage is offered to the WORKER's pool. The accounting
    // clamp plus per-thread ownership keeps this benign; TSan confirms.
    revelio::util::Rng cross_rng(5);
    Tensor crossing = Tensor::Randn(64, 64, &cross_rng);
    std::thread destroyer([moved = std::move(crossing)]() mutable { (void)moved; });
    destroyer.join();
  }

  // Telemetry under contention: counters/histograms/gauges/spans updated from
  // raw threads and from inside ParallelFor while a reader concurrently
  // consolidates the trace and snapshots the registry. Any unsynchronized
  // access in the obs layer trips TSan here.
  {
    namespace obs = revelio::obs;
    obs::SetEnabled(true);
    obs::TraceRecorder::Global().Clear();
    obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter("tsan.counter");
    obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram("tsan.histogram");
    obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge("tsan.gauge");
    counter->Reset();
    histogram->Reset();

    constexpr int kUpdaters = 4;
    constexpr int kItemsPerUpdater = 5000;
    std::vector<std::thread> updaters;
    for (int t = 0; t < kUpdaters; ++t) {
      updaters.emplace_back([&, t] {
        obs::ScopedSpan span("tsan.updater");
        for (int i = 0; i < kItemsPerUpdater; ++i) {
          counter->Increment();
          histogram->Observe(1e-4 * (i % 100));
          gauge->Set(static_cast<double>(t));
        }
      });
    }
    std::thread reader([&] {
      for (int i = 0; i < 50; ++i) {
        (void)obs::TraceRecorder::Global().Consolidated();
        (void)obs::MetricsRegistry::Global().Snapshot();
        (void)counter->Total();
      }
    });
    // Metric updates from ParallelFor chunks race against the reader too.
    util::ParallelFor(0, kItemsPerUpdater, 100, [&](int64_t begin, int64_t end) {
      obs::ScopedSpan span("tsan.chunk");
      for (int64_t i = begin; i < end; ++i) counter->Increment();
    });
    for (auto& updater : updaters) updater.join();
    reader.join();

    const uint64_t expected = static_cast<uint64_t>(kUpdaters + 1) * kItemsPerUpdater;
    if (counter->Total() != expected) {
      std::fprintf(stderr, "FAIL: tsan.counter total %llu != %llu\n",
                   static_cast<unsigned long long>(counter->Total()),
                   static_cast<unsigned long long>(expected));
      ok = false;
    }
    if (histogram->Count() != static_cast<uint64_t>(kUpdaters) * kItemsPerUpdater) {
      std::fprintf(stderr, "FAIL: tsan.histogram count mismatch\n");
      ok = false;
    }
    obs::SetEnabled(false);
    obs::TraceRecorder::Global().Clear();
  }

  // Flight recorder under write contention: 16 raw threads append to the
  // lock-free ring (wrapping it several times) while readers concurrently
  // Collect and export. The all-atomic slot design means TSan must stay
  // silent even though dumps race active writers; the logic checks confirm
  // no claim was lost and the retained set stays within capacity.
  {
    namespace obs = revelio::obs;
    obs::SetFlightEnabled(true);
    obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
    recorder.Clear();
    constexpr int kWriters = 16;
    const size_t per_writer = recorder.capacity() / 4 + 129;  // ~4x capacity total
    std::vector<std::thread> writers;
    for (int t = 0; t < kWriters; ++t) {
      writers.emplace_back([per_writer, t] {
        for (size_t i = 0; i < per_writer; ++i) {
          obs::FlightRecorder::Global().Record(obs::FlightEventKind::kCounterDelta,
                                               "tsan.flight", static_cast<double>(t));
        }
      });
    }
    std::thread collector([&recorder] {
      for (int i = 0; i < 20; ++i) (void)recorder.Collect();
    });
    std::thread exporter([&recorder] {
      for (int i = 0; i < 5; ++i) {
        obs::JsonWriter writer;
        recorder.AppendChromeTrace(&writer);
      }
    });
    for (auto& writer : writers) writer.join();
    collector.join();
    exporter.join();

    const uint64_t expected = static_cast<uint64_t>(kWriters) * per_writer;
    if (recorder.total_recorded() != expected) {
      std::fprintf(stderr, "FAIL: flight recorder claimed %llu != %llu\n",
                   static_cast<unsigned long long>(recorder.total_recorded()),
                   static_cast<unsigned long long>(expected));
      ok = false;
    }
    if (recorder.Collect().size() > recorder.capacity()) {
      std::fprintf(stderr, "FAIL: flight recorder retained more than capacity\n");
      ok = false;
    }
    recorder.Clear();
  }

  // Admission queue under contention (src/serve): concurrent TrySubmit-style
  // producers and blocking producers hammer a small bounded queue while
  // consumer threads WaitPop and one thread begins a cancelling shutdown
  // mid-stream. TSan checks the mutex/CV discipline; the conservation check
  // (pushed == popped + cancelled once quiesced) catches lost or duplicated
  // items across the lifecycle transition.
  {
    namespace serve = revelio::serve;
    serve::AdmissionQueue queue(8);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 400;
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> consumed{0};
    std::vector<std::thread> producers;
    for (int t = 0; t < kProducers; ++t) {
      producers.emplace_back([&queue, &admitted, t] {
        serve::QueueItem item;
        for (int i = 0; i < kPerProducer; ++i) {
          item.id = static_cast<uint64_t>(t) * kPerProducer + i;
          item.coalesce_key = static_cast<uint64_t>(t % 2);
          // Even producers shed load (TryPush), odd producers block (Push);
          // both must fail cleanly once shutdown begins.
          const revelio::util::Status pushed =
              (t % 2 == 0) ? queue.TryPush(item) : queue.Push(item);
          if (pushed.ok()) admitted.fetch_add(1);
        }
      });
    }
    std::vector<std::thread> consumers;
    for (int t = 0; t < 2; ++t) {
      consumers.emplace_back([&queue, &consumed] {
        serve::QueueItem item;
        while (queue.WaitPop(&item)) {
          consumed.fetch_add(1);
          // Opportunistic coalescing against the racing producers.
          while (queue.TryPopMatching(item.coalesce_key, &item)) consumed.fetch_add(1);
        }
      });
    }
    // Let some traffic flow, then cancel mid-stream.
    while (queue.total_popped() < kPerProducer / 2) std::this_thread::yield();
    const std::vector<serve::QueueItem> first_wave = queue.BeginShutdown(/*cancel=*/true);
    for (auto& producer : producers) producer.join();
    for (auto& consumer : consumers) consumer.join();
    // Consumers may have drained items between the cancel sweep and their
    // exit; anything still queued is accounted by a second sweep.
    serve::QueueItem leftover;
    uint64_t swept = first_wave.size();
    while (queue.TryPop(&leftover)) ++swept;
    queue.MarkStopped();
    if (admitted.load() != consumed.load() + swept) {
      std::fprintf(stderr, "FAIL: admission queue lost items (%llu != %llu + %llu)\n",
                   static_cast<unsigned long long>(admitted.load()),
                   static_cast<unsigned long long>(consumed.load()),
                   static_cast<unsigned long long>(swept));
      ok = false;
    }
    if (queue.total_pushed() !=
        queue.total_popped() + queue.total_cancelled()) {
      std::fprintf(stderr, "FAIL: admission queue totals do not conserve\n");
      ok = false;
    }
  }

  // Parallel tensor kernels: run the same workload at 1 and 4 threads under
  // the instrumented runtime and require identical bits.
  util::SetNumThreads(1);
  const std::vector<float> serial = TensorWorkload();
  util::SetNumThreads(4);
  const std::vector<float> parallel = TensorWorkload();
  ok = ExpectEqual(serial, parallel, "tensor workload") && ok;

  if (ok) std::printf("parallel_tsan_test: OK\n");
  return ok ? 0 : 1;
}
