// Tests for dataset generators: statistics (paper Table III bands), ground
// truth consistency, determinism, and learnability preconditions.

#include "datasets/dataset.h"

#include <gtest/gtest.h>

namespace revelio::datasets {
namespace {

TEST(RegistryTest, AllNamesBuild) {
  for (const std::string& name : AllDatasetNames()) {
    Dataset dataset = MakeDataset(name, 1);
    EXPECT_EQ(dataset.name, name);
    EXPECT_GT(dataset.num_graphs(), 0);
    EXPECT_GT(dataset.feature_dim, 0);
    EXPECT_GE(dataset.num_classes, 2);
  }
}

TEST(RegistryTest, DeterministicPerSeed) {
  Dataset a = MakeDataset("ba_shapes", 5);
  Dataset b = MakeDataset("ba_shapes", 5);
  ASSERT_EQ(a.instances[0].graph.num_edges(), b.instances[0].graph.num_edges());
  for (int e = 0; e < a.instances[0].graph.num_edges(); ++e) {
    EXPECT_TRUE(a.instances[0].graph.edge(e) == b.instances[0].graph.edge(e));
  }
  Dataset c = MakeDataset("ba_shapes", 6);
  EXPECT_NE(a.instances[0].graph.num_edges(), 0);
  // Different seed should move at least one random attachment.
  bool any_difference = c.instances[0].graph.num_edges() != a.instances[0].graph.num_edges();
  for (int e = 0; !any_difference && e < a.instances[0].graph.num_edges() &&
                  e < c.instances[0].graph.num_edges();
       ++e) {
    any_difference = !(a.instances[0].graph.edge(e) == c.instances[0].graph.edge(e));
  }
  EXPECT_TRUE(any_difference);
}

TEST(BaShapesTest, MatchesPaperStatistics) {
  Dataset dataset = MakeBaShapes(1);
  const auto& instance = dataset.instances[0];
  EXPECT_EQ(instance.graph.num_nodes(), 700);
  // Paper Table III: 4110 directed edges; construction lands in that band.
  EXPECT_GT(instance.graph.num_edges(), 3600);
  EXPECT_LT(instance.graph.num_edges(), 4600);
  EXPECT_EQ(dataset.num_classes, 4);
  EXPECT_EQ(dataset.feature_dim, 10);

  // 80 houses x 5 nodes with labels 1/2/3 inside the motif.
  int in_motif = 0;
  std::vector<int> label_counts(4, 0);
  for (int v = 0; v < 700; ++v) {
    ++label_counts[instance.labels[v]];
    if (dataset.node_in_motif[0][v]) ++in_motif;
  }
  EXPECT_EQ(in_motif, 400);
  EXPECT_EQ(label_counts[1], 80);   // one roof per house
  EXPECT_EQ(label_counts[2], 160);  // two middle
  EXPECT_EQ(label_counts[3], 160);  // two bottom
  EXPECT_EQ(label_counts[0], 300);  // base

  // Every motif node's label is nonzero; ground-truth edges connect motif
  // nodes of the same house (12 directed per house = 960).
  int motif_edges = 0;
  for (int e = 0; e < instance.graph.num_edges(); ++e) {
    if (dataset.edge_in_motif[0][e]) {
      ++motif_edges;
      EXPECT_GT(instance.labels[instance.graph.edge(e).src], 0);
      EXPECT_GT(instance.labels[instance.graph.edge(e).dst], 0);
    }
  }
  // 12 directed edges per house; random perturbation edges occasionally land
  // inside a house and count as motif edges under the endpoint convention.
  EXPECT_GE(motif_edges, 80 * 12);
  EXPECT_LE(motif_edges, 80 * 12 + 20);
}

TEST(TreeCyclesTest, MatchesPaperStatistics) {
  Dataset dataset = MakeTreeCycles(2);
  const auto& instance = dataset.instances[0];
  EXPECT_EQ(instance.graph.num_nodes(), 871);
  EXPECT_GT(instance.graph.num_edges(), 1800);
  EXPECT_LT(instance.graph.num_edges(), 2100);
  EXPECT_EQ(dataset.num_classes, 2);
  int cycle_nodes = 0;
  for (int v = 0; v < 871; ++v) cycle_nodes += instance.labels[v];
  EXPECT_EQ(cycle_nodes, 360);
  // Cycle motif ground truth: 60 cycles x 6 undirected edges x 2 = 720.
  int motif_edges = 0;
  for (char m : dataset.edge_in_motif[0]) motif_edges += m;
  EXPECT_EQ(motif_edges, 720);
}

TEST(Ba2MotifsTest, BalancedClassesAndMotifs) {
  Dataset dataset = MakeBa2Motifs(3, 100);
  EXPECT_EQ(dataset.num_graphs(), 100);
  int positives = 0;
  for (const auto& instance : dataset.instances) {
    EXPECT_EQ(instance.graph.num_nodes(), 25);
    positives += instance.labels[0];
  }
  EXPECT_EQ(positives, 50);
  // House graphs have 12 directed motif edges, cycle graphs 10.
  for (int g = 0; g < dataset.num_graphs(); ++g) {
    int motif_edges = 0;
    for (char m : dataset.edge_in_motif[g]) motif_edges += m;
    EXPECT_EQ(motif_edges, dataset.instances[g].labels[0] == 0 ? 12 : 10);
  }
}

TEST(CitationTest, StatisticsAndHomophily) {
  Dataset dataset = MakeCoraLike(4);
  const auto& instance = dataset.instances[0];
  EXPECT_EQ(instance.graph.num_nodes(), 2708);
  EXPECT_EQ(instance.graph.num_edges(), 2 * 5278);
  EXPECT_EQ(dataset.num_classes, 7);
  EXPECT_FALSE(dataset.has_ground_truth);

  // Homophily: most edges connect same-class endpoints.
  int same = 0;
  for (const auto& edge : instance.graph.edges()) {
    if (instance.labels[edge.src] == instance.labels[edge.dst]) ++same;
  }
  EXPECT_GT(static_cast<double>(same) / instance.graph.num_edges(), 0.6);

  // Class-block features fire more inside the block.
  const int block = dataset.feature_dim / dataset.num_classes;
  double in_block = 0.0, off_block = 0.0;
  int in_count = 0, off_count = 0;
  for (int v = 0; v < 200; ++v) {
    const int begin = instance.labels[v] * block;
    for (int f = 0; f < dataset.feature_dim; ++f) {
      if (f >= begin && f < begin + block) {
        in_block += instance.features.At(v, f);
        ++in_count;
      } else {
        off_block += instance.features.At(v, f);
        ++off_count;
      }
    }
  }
  EXPECT_GT(in_block / in_count, 5.0 * (off_block / off_count));
}

TEST(CitationTest, AllVariantsMatchDeclaredSizes) {
  Dataset citeseer = MakeCiteseerLike(1);
  EXPECT_EQ(citeseer.instances[0].graph.num_nodes(), 3327);
  EXPECT_EQ(citeseer.num_classes, 6);
  Dataset pubmed = MakePubmedLike(1);
  EXPECT_EQ(pubmed.instances[0].graph.num_nodes(), 4000);
  EXPECT_EQ(pubmed.num_classes, 3);
}

TEST(MoleculeTest, MutagLikeMotifMostlyDeterminesLabel) {
  Dataset dataset = MakeMutagLike(7, 200);
  EXPECT_EQ(dataset.num_graphs(), 200);
  int mismatches = 0;
  for (int g = 0; g < dataset.num_graphs(); ++g) {
    const auto& instance = dataset.instances[g];
    int motif_edges = 0;
    for (char m : dataset.edge_in_motif[g]) motif_edges += m;
    // NO2-like group: 2 undirected = 4 directed edges, or absent entirely.
    EXPECT_TRUE(motif_edges == 0 || motif_edges == 4);
    const int structural_label = motif_edges > 0 ? 1 : 0;
    if (structural_label != instance.labels[0]) ++mismatches;
    // Table III band: MUTAG averages ~17.9 nodes.
    EXPECT_GE(instance.graph.num_nodes(), 15);
    EXPECT_LE(instance.graph.num_nodes(), 23);
  }
  // ~10% label noise (keeps model accuracy in the paper's MUTAG band).
  EXPECT_GT(mismatches, 2);
  EXPECT_LT(mismatches, 50);
  EXPECT_NEAR(dataset.AverageNodes(), 17.9, 3.0);
}

TEST(MoleculeTest, BbbpLikeRingMotif) {
  Dataset dataset = MakeBbbpLike(8, 100);
  int mismatches = 0;
  for (int g = 0; g < dataset.num_graphs(); ++g) {
    int motif_edges = 0;
    for (char m : dataset.edge_in_motif[g]) motif_edges += m;
    EXPECT_TRUE(motif_edges == 0 || motif_edges == 12);
    if ((motif_edges > 0 ? 1 : 0) != dataset.instances[g].labels[0]) ++mismatches;
  }
  EXPECT_GT(mismatches, 2);   // ~12% label noise
  EXPECT_LT(mismatches, 30);
  EXPECT_NEAR(dataset.AverageNodes(), 24.1, 5.0);
}

TEST(DatasetTest, AverageStatsHelpers) {
  Dataset dataset = MakeBa2Motifs(9, 10);
  EXPECT_NEAR(dataset.AverageNodes(), 25.0, 1e-9);
  EXPECT_GT(dataset.AverageEdges(), 45.0);
  EXPECT_LT(dataset.AverageEdges(), 56.0);
}

}  // namespace
}  // namespace revelio::datasets
