// Tests for the eval runner: instance selection invariants, symmetrization,
// and configuration plumbing.

#include "eval/runner.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "flow/message_flow.h"

namespace revelio::eval {
namespace {

TEST(SymmetrizeTest, AveragesDirectedPairs) {
  graph::Graph g(3);
  g.AddUndirectedEdge(0, 1);  // edges 0 and 1
  g.AddEdge(2, 0);            // edge 2 has no reverse
  const auto result = SymmetrizeEdgeScores(g, {0.2, 0.8, 0.4});
  EXPECT_NEAR(result[0], 0.5, 1e-12);
  EXPECT_NEAR(result[1], 0.5, 1e-12);
  EXPECT_NEAR(result[2], 0.4, 1e-12) << "one-directional edges keep their score";
}

TEST(DefaultEpochsTest, PerDatasetValues) {
  EXPECT_EQ(DefaultGnnTrainEpochs("ba_shapes"), 500);
  EXPECT_EQ(DefaultGnnTrainEpochs("tree_cycles"), 500);
  EXPECT_EQ(DefaultGnnTrainEpochs("ba_2motifs"), 300);
  EXPECT_EQ(DefaultGnnTrainEpochs("cora_like"), 150);
  EXPECT_EQ(DefaultGnnTrainEpochs("mutag_like"), 100);
}

class SelectInstancesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RunnerConfig config;
    config.num_instances = 6;
    config.gnn_train_epochs = 30;  // instance selection needs no strong model
    prepared_ = new PreparedModel(PrepareModel("tree_cycles", gnn::GnnArch::kGcn, config));
    config_ = config;
  }
  static void TearDownTestSuite() {
    delete prepared_;
    prepared_ = nullptr;
  }
  static PreparedModel* prepared_;
  static RunnerConfig config_;
};

PreparedModel* SelectInstancesTest::prepared_ = nullptr;
RunnerConfig SelectInstancesTest::config_;

TEST_F(SelectInstancesTest, NodeInstanceInvariants) {
  const auto instances = SelectInstances(*prepared_, config_, InstanceFilter::kAny);
  EXPECT_LE(static_cast<int>(instances.size()), config_.num_instances);
  EXPECT_FALSE(instances.empty());
  for (const auto& instance : instances) {
    EXPECT_GE(instance.graph.num_edges(), config_.min_instance_edges);
    EXPECT_GE(instance.target_node, 0);
    EXPECT_LT(instance.target_node, instance.graph.num_nodes());
    EXPECT_EQ(instance.features.rows(), instance.graph.num_nodes());
    // Flow count matches an independent recount.
    const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(instance.graph);
    EXPECT_EQ(instance.num_flows,
              flow::CountFlowsToTarget(edges, instance.target_node, 3));
    EXPECT_LE(instance.num_flows, config_.max_flows);
    // Ground truth arrays line up with the subgraph.
    EXPECT_EQ(static_cast<int>(instance.edge_in_motif.size()), instance.graph.num_edges());
  }
}

TEST_F(SelectInstancesTest, MotifFilterOnlyKeepsCorrectMotifTargets) {
  const auto instances =
      SelectInstances(*prepared_, config_, InstanceFilter::kMotifCorrect);
  for (const auto& instance : instances) {
    EXPECT_TRUE(instance.target_in_motif);
    EXPECT_TRUE(instance.correct_prediction);
  }
}

TEST_F(SelectInstancesTest, SelectionIsDeterministic) {
  const auto a = SelectInstances(*prepared_, config_, InstanceFilter::kAny);
  const auto b = SelectInstances(*prepared_, config_, InstanceFilter::kAny);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].target_node, b[i].target_node);
    EXPECT_EQ(a[i].graph.num_edges(), b[i].graph.num_edges());
    EXPECT_EQ(a[i].target_class, b[i].target_class);
  }
}

TEST_F(SelectInstancesTest, TaskConstructionPointsAtInstanceStorage) {
  const auto instances = SelectInstances(*prepared_, config_, InstanceFilter::kAny);
  const explain::ExplanationTask task = instances[0].MakeTask(prepared_->model.get());
  EXPECT_EQ(task.graph, &instances[0].graph);
  EXPECT_EQ(task.model, prepared_->model.get());
  EXPECT_EQ(task.logit_row(), task.target_node);
}

TEST(GraphInstanceSelectionTest, GraphTaskUsesWholeGraphs) {
  RunnerConfig config;
  config.num_instances = 3;
  config.gnn_train_epochs = 10;
  PreparedModel prepared = PrepareModel("mutag_like", gnn::GnnArch::kGin, config);
  const auto instances = SelectInstances(prepared, config, InstanceFilter::kAny);
  EXPECT_FALSE(instances.empty());
  for (const auto& instance : instances) {
    EXPECT_EQ(instance.target_node, -1);
    const explain::ExplanationTask task = instance.MakeTask(prepared.model.get());
    EXPECT_FALSE(task.is_node_task());
    EXPECT_EQ(task.logit_row(), 0);
    const gnn::LayerEdgeSet edges = gnn::BuildLayerEdges(instance.graph);
    EXPECT_EQ(instance.num_flows, flow::CountAllFlows(edges, 3));
  }
}

}  // namespace
}  // namespace revelio::eval
