// Fails fast when this binary was compiled for a vector ISA the running CPU
// does not implement (e.g. an -mavx2 build on a pre-Haswell machine). Every
// SIMD kernel call would then be an illegal instruction mid-test, so ctest
// runs this standalone check under the same `simd` label as the suites that
// depend on it. Also prints the tier the build selected, mirroring the
// configure-time "Revelio SIMD tier:" summary line.

#include <cstdio>

#include "tensor/simd.h"

int main() {
  namespace simd = revelio::tensor::simd;
  std::printf("compiled SIMD tier: %s (%d lanes), runtime dispatch %s\n", simd::IsaName(),
              simd::Lanes(), simd::Enabled() ? "enabled" : "disabled (REVELIO_SIMD=0)");
  if (!simd::CpuSupportsCompiledIsa()) {
    std::fprintf(stderr,
                 "FATAL: this binary was compiled for '%s' but the CPU does not support it; "
                 "rebuild with -DREVELIO_SIMD_ISA=scalar\n",
                 simd::IsaName());
    return 1;
  }
  return 0;
}
