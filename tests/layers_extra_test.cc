// Additional layer-level behavior tests: GCN normalization modes, GIN's
// epsilon self-weighting, GAT head configurations, and model-level mask
// plumbing across architectures.

#include <cmath>

#include <gtest/gtest.h>

#include "gnn/layers.h"
#include "gnn/model.h"
#include "tensor/ops.h"

namespace revelio::gnn {
namespace {

using graph::Graph;
using tensor::Tensor;

Graph Pair() {
  Graph g(2);
  g.AddUndirectedEdge(0, 1);
  return g;
}

TEST(GcnNormalizationTest, UnnormalizedCoefficientsAreOnes) {
  Graph g = Pair();
  LayerEdgeSet edges = BuildLayerEdges(g);
  util::Rng rng(1);
  GcnLayer normalized(3, 3, &rng, /*normalize=*/true);
  GcnLayer plain(3, 3, &rng, /*normalize=*/false);
  EXPECT_TRUE(normalized.normalize());
  EXPECT_FALSE(plain.normalize());
  for (float c : plain.Coefficients(g, edges)) EXPECT_EQ(c, 1.0f);
  for (float c : normalized.Coefficients(g, edges)) EXPECT_NEAR(c, 0.5f, 1e-6);
}

TEST(GcnNormalizationTest, UnnormalizedOutputScalesWithDegree) {
  // Node with two identical in-neighbors aggregates twice the message under
  // plain-sum aggregation; the normalized variant does not.
  Graph one_neighbor(3);
  one_neighbor.AddEdge(1, 0);
  Graph two_neighbors(3);
  two_neighbors.AddEdge(1, 0);
  two_neighbors.AddEdge(2, 0);
  util::Rng rng(2);
  GcnLayer plain(2, 2, &rng, /*normalize=*/false);
  Tensor x = Tensor::Ones(3, 2);
  Tensor out_one = plain.Forward(one_neighbor, BuildLayerEdges(one_neighbor), x, Tensor());
  Tensor out_two =
      plain.Forward(two_neighbors, BuildLayerEdges(two_neighbors), x, Tensor());
  // out(two) - out(one) equals exactly one extra unit message (x W).
  Graph none(3);
  Tensor out_none = plain.Forward(none, BuildLayerEdges(none), x, Tensor());
  for (int c = 0; c < 2; ++c) {
    const float unit = out_one.At(0, c) - out_none.At(0, c);
    EXPECT_NEAR(out_two.At(0, c) - out_one.At(0, c), unit, 1e-5);
  }
}

TEST(GinLayerTest, EpsilonWeightsSelfLoopMessage) {
  Graph g(1);
  LayerEdgeSet edges = BuildLayerEdges(g);
  util::Rng rng(3);
  GinLayer gin_zero(2, 4, &rng, /*eps=*/0.0f);
  util::Rng rng2(3);  // identical weights
  GinLayer gin_one(2, 4, &rng2, /*eps=*/1.0f);
  EXPECT_EQ(gin_zero.eps(), 0.0f);
  EXPECT_EQ(gin_one.eps(), 1.0f);
  Tensor x = Tensor::Ones(1, 2);
  Tensor out_zero = gin_zero.Forward(g, edges, x, Tensor());
  Tensor out_double = gin_one.Forward(g, edges, Tensor::Full(1, 2, 0.5f), Tensor());
  // (1 + eps) * 0.5 with eps = 1 equals 1.0 * 1 with eps = 0 -> same MLP input.
  for (int c = 0; c < 4; ++c) EXPECT_NEAR(out_zero.At(0, c), out_double.At(0, c), 1e-5);
}

TEST(GatLayerTest, ConcatDimensionsAndHeadCount) {
  util::Rng rng(4);
  GatLayer concat_layer(6, 8, /*num_heads=*/4, /*concat=*/true, &rng);
  EXPECT_EQ(concat_layer.num_heads(), 4);
  GatLayer mean_layer(6, 8, /*num_heads=*/4, /*concat=*/false, &rng);
  Graph g = Pair();
  LayerEdgeSet edges = BuildLayerEdges(g);
  Tensor x = Tensor::Randn(2, 6, &rng);
  EXPECT_EQ(concat_layer.Forward(g, edges, x, Tensor()).cols(), 8);
  EXPECT_EQ(mean_layer.Forward(g, edges, x, Tensor()).cols(), 8);
}

TEST(GatLayerTest, SingleHeadConcatEqualsMean) {
  util::Rng rng_a(5);
  GatLayer concat_layer(4, 4, 1, /*concat=*/true, &rng_a);
  util::Rng rng_b(5);
  GatLayer mean_layer(4, 4, 1, /*concat=*/false, &rng_b);
  Graph g = Pair();
  LayerEdgeSet edges = BuildLayerEdges(g);
  util::Rng rng(6);
  Tensor x = Tensor::Randn(2, 4, &rng);
  Tensor a = concat_layer.Forward(g, edges, x, Tensor());
  Tensor b = mean_layer.Forward(g, edges, x, Tensor());
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 4; ++c) EXPECT_NEAR(a.At(r, c), b.At(r, c), 1e-5);
  }
}

class ModelMaskPlumbing : public ::testing::TestWithParam<GnnArch> {};

TEST_P(ModelMaskPlumbing, PartialMaskVectorAllowsUnmaskedLayers) {
  GnnConfig config;
  config.arch = GetParam();
  config.input_dim = 4;
  config.hidden_dim = 8;
  config.num_classes = 2;
  config.seed = 7;
  GnnModel model(config);
  Graph g = Pair();
  LayerEdgeSet edges = BuildLayerEdges(g);
  util::Rng rng(8);
  Tensor x = Tensor::Randn(2, 4, &rng);
  // Mask only layer 2; layers 1 and 3 get undefined tensors (= unmasked).
  std::vector<Tensor> masks(3);
  masks[1] = Tensor::Ones(edges.num_layer_edges(), 1);
  Tensor masked = model.Run(g, edges, x, masks).logits;
  Tensor unmasked = model.Run(g, edges, x, {}).logits;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) EXPECT_NEAR(masked.At(r, c), unmasked.At(r, c), 1e-5);
  }
}

TEST_P(ModelMaskPlumbing, MaskGradientsFlowToAllLayers) {
  GnnConfig config;
  config.arch = GetParam();
  config.input_dim = 4;
  config.hidden_dim = 8;
  config.num_classes = 2;
  config.seed = 9;
  GnnModel model(config);
  Graph g(3);
  g.AddUndirectedEdge(0, 1);
  g.AddUndirectedEdge(1, 2);
  LayerEdgeSet edges = BuildLayerEdges(g);
  util::Rng rng(10);
  Tensor x = Tensor::Randn(3, 4, &rng);
  std::vector<Tensor> masks;
  for (int l = 0; l < 3; ++l) {
    masks.push_back(Tensor::Ones(edges.num_layer_edges(), 1).WithRequiresGrad());
  }
  Tensor loss = tensor::Select(model.Run(g, edges, x, masks).logits, 1, 0);
  loss.Backward();
  for (int l = 0; l < 3; ++l) {
    double magnitude = 0.0;
    for (int e = 0; e < edges.num_layer_edges(); ++e) {
      magnitude += std::fabs(masks[l].GradAt(e, 0));
    }
    EXPECT_GT(magnitude, 0.0) << "no mask gradient at layer " << l;
  }
}

INSTANTIATE_TEST_SUITE_P(Archs, ModelMaskPlumbing,
                         ::testing::Values(GnnArch::kGcn, GnnArch::kGin, GnnArch::kGat));

}  // namespace
}  // namespace revelio::gnn
