// Per-explanation audit records: the in-memory sink collects one record per
// Explain call (and one per instance of a mega-batched ExplainBatch), with
// per-epoch convergence curves, finite entropies, descending top-k scores,
// phase timings, the driving config, and round-trippable JSON. Auditing off
// keeps hooks inert: Current() stays nullptr and nothing is submitted.

#include "obs/audit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/revelio.h"
#include "explain/explainer.h"
#include "explain/gnnexplainer.h"
#include "gnn/model.h"
#include "graph/graph.h"
#include "obs/json.h"
#include "tensor/tensor.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace revelio {
namespace {

using tensor::Tensor;

constexpr uint64_t kSeed = 20260808;
constexpr int kFeatureDim = 4;
constexpr int kEpochs = 6;

// Self-owning task storage (ExplanationTask holds pointers).
struct TaskData {
  graph::Graph graph;
  Tensor features;
  int target_node = -1;
  int target_class = 0;

  explain::ExplanationTask MakeTask(const gnn::GnnModel* model) const {
    explain::ExplanationTask task;
    task.model = model;
    task.graph = &graph;
    task.features = features;
    task.target_node = target_node;
    task.target_class = target_class;
    return task;
  }
};

// Ring + random chords: connected, every node has in-edges, so flow
// enumeration to any target is non-empty at any depth.
TaskData MakeNodeTaskData(uint64_t seed) {
  util::Rng rng(seed);
  TaskData data;
  const int n = 6 + rng.UniformInt(5);
  data.graph = graph::Graph(n);
  for (int v = 0; v < n; ++v) data.graph.AddUndirectedEdge(v, (v + 1) % n);
  for (int i = 0; i < 4; ++i) {
    const int u = rng.UniformInt(n);
    const int v = rng.UniformInt(n);
    if (u != v && !data.graph.HasEdge(u, v)) data.graph.AddEdge(u, v);
  }
  data.features = Tensor::Uniform(n, kFeatureDim, -1.0f, 1.0f, &rng);
  data.target_node = rng.UniformInt(n);
  data.target_class = rng.UniformInt(2);
  return data;
}

gnn::GnnConfig ModelConfig() {
  gnn::GnnConfig config;
  config.arch = gnn::GnnArch::kGcn;
  config.task = gnn::TaskType::kNodeClassification;
  config.input_dim = kFeatureDim;
  config.hidden_dim = 6;
  config.num_classes = 2;
  config.num_layers = 2;
  config.seed = kSeed + 1;
  return config;
}

core::RevelioOptions RevelioTestOptions() {
  core::RevelioOptions options;
  options.epochs = kEpochs;
  options.seed = kSeed + 2;
  return options;
}

bool AllFinite(const std::vector<double>& values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

bool HasConfigKey(const obs::AuditRecord& record, const std::string& key) {
  for (const auto& [k, v] : record.config) {
    if (k == key) return true;
  }
  return false;
}

bool HasPhase(const obs::AuditRecord& record, const std::string& name) {
  for (const auto& [phase, seconds] : record.phase_seconds) {
    if (phase == name && seconds >= 0.0) return true;
  }
  return false;
}

// Every test drains and closes the global sink so later suites start clean.
class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::SetNumThreads(1);
    obs::AuditSink::Global().Close();
  }
  void TearDown() override {
    obs::AuditSink::Global().Close();
    util::SetNumThreads(util::HardwareThreads());
  }
};

TEST_F(AuditTest, DisabledSinkKeepsHooksInert) {
  EXPECT_FALSE(obs::AuditSink::Global().enabled());
  EXPECT_EQ(obs::AuditScope::Current(), nullptr);
  gnn::GnnModel model(ModelConfig());
  model.Freeze();
  const TaskData data = MakeNodeTaskData(kSeed + 10);
  core::RevelioExplainer explainer(RevelioTestOptions());
  const uint64_t before = obs::AuditSink::Global().records_submitted();
  (void)explainer.Explain(data.MakeTask(&model), explain::Objective::kFactual);
  EXPECT_EQ(obs::AuditSink::Global().records_submitted(), before);
}

TEST_F(AuditTest, SequentialExplainEmitsOneCompleteRecord) {
  obs::AuditSink::Global().CollectInMemory();
  gnn::GnnModel model(ModelConfig());
  model.Freeze();
  const TaskData data = MakeNodeTaskData(kSeed + 20);
  core::RevelioExplainer explainer(RevelioTestOptions());
  const explain::Explanation explanation =
      explainer.Explain(data.MakeTask(&model), explain::Objective::kFactual);
  ASSERT_FALSE(explanation.edge_scores.empty());

  const std::vector<obs::AuditRecord> records = obs::AuditSink::Global().TakeRecords();
  ASSERT_EQ(records.size(), 1u);
  const obs::AuditRecord& record = records[0];
  EXPECT_EQ(record.method, "Revelio");
  EXPECT_EQ(record.objective, "factual");
  EXPECT_FALSE(record.megabatched);
  EXPECT_EQ(record.group_size, 1);
  EXPECT_EQ(record.instance_in_group, 0);
  EXPECT_EQ(record.num_nodes, data.graph.num_nodes());
  EXPECT_EQ(record.num_edges, data.graph.num_edges());
  EXPECT_EQ(record.target_node, data.target_node);
  EXPECT_EQ(record.target_class, data.target_class);
  // One convergence sample per optimizer epoch, all finite.
  ASSERT_EQ(record.loss_curve.size(), static_cast<size_t>(kEpochs));
  ASSERT_EQ(record.mask_entropy.size(), static_cast<size_t>(kEpochs));
  EXPECT_TRUE(AllFinite(record.loss_curve));
  EXPECT_TRUE(AllFinite(record.mask_entropy));
  // Top-k scores sorted descending.
  ASSERT_FALSE(record.top_scores.empty());
  for (size_t i = 1; i < record.top_scores.size(); ++i) {
    EXPECT_GE(record.top_scores[i - 1], record.top_scores[i]);
  }
  EXPECT_GT(record.wall_seconds, 0.0);
  EXPECT_TRUE(HasPhase(record, "optimize"));
  EXPECT_TRUE(HasPhase(record, "enumerate_flows"));
  EXPECT_TRUE(HasConfigKey(record, "epochs"));
  EXPECT_TRUE(HasConfigKey(record, "learning_rate"));
  EXPECT_TRUE(HasConfigKey(record, "tensor_pool"));
}

TEST_F(AuditTest, MegaBatchedGroupAttributesPerInstance) {
  obs::AuditSink::Global().CollectInMemory();
  gnn::GnnModel model(ModelConfig());
  model.Freeze();
  constexpr int kGroup = 5;
  std::vector<TaskData> data;
  std::vector<explain::ExplanationTask> tasks;
  for (int i = 0; i < kGroup; ++i) data.push_back(MakeNodeTaskData(kSeed + 30 + i));
  for (const TaskData& d : data) tasks.push_back(d.MakeTask(&model));
  std::vector<const explain::ExplanationTask*> group;
  for (const auto& task : tasks) group.push_back(&task);

  core::RevelioExplainer explainer(RevelioTestOptions());
  const std::vector<explain::Explanation> batched =
      explainer.ExplainBatch(group, explain::Objective::kFactual);
  ASSERT_EQ(batched.size(), static_cast<size_t>(kGroup));

  const std::vector<obs::AuditRecord> records = obs::AuditSink::Global().TakeRecords();
  ASSERT_EQ(records.size(), static_cast<size_t>(kGroup));
  for (int i = 0; i < kGroup; ++i) {
    const obs::AuditRecord& record = records[i];
    EXPECT_TRUE(record.megabatched) << "instance " << i;
    EXPECT_EQ(record.group_size, kGroup);
    EXPECT_EQ(record.instance_in_group, i);
    // Each instance carries its own task shape and its own curves.
    EXPECT_EQ(record.num_nodes, data[i].graph.num_nodes()) << "instance " << i;
    EXPECT_EQ(record.num_edges, data[i].graph.num_edges()) << "instance " << i;
    EXPECT_EQ(record.target_node, data[i].target_node) << "instance " << i;
    ASSERT_EQ(record.loss_curve.size(), static_cast<size_t>(kEpochs)) << "instance " << i;
    ASSERT_EQ(record.mask_entropy.size(), static_cast<size_t>(kEpochs)) << "instance " << i;
    EXPECT_TRUE(AllFinite(record.loss_curve)) << "instance " << i;
    EXPECT_TRUE(AllFinite(record.mask_entropy)) << "instance " << i;
    EXPECT_TRUE(HasPhase(record, "optimize")) << "instance " << i;
  }
  // Distinct tasks converge differently: the per-instance curves must not be
  // copies of instance 0's curve.
  bool curves_differ = false;
  for (int i = 1; i < kGroup; ++i) {
    if (records[i].loss_curve != records[0].loss_curve) curves_differ = true;
  }
  EXPECT_TRUE(curves_differ) << "per-instance attribution collapsed to one curve";
  // record_id is unique and increasing in submission order.
  for (int i = 1; i < kGroup; ++i) {
    EXPECT_GT(records[i].record_id, records[i - 1].record_id);
  }
}

TEST_F(AuditTest, GnnExplainerBatchAttributesPerInstance) {
  obs::AuditSink::Global().CollectInMemory();
  gnn::GnnModel model(ModelConfig());
  model.Freeze();
  constexpr int kGroup = 3;
  std::vector<TaskData> data;
  std::vector<explain::ExplanationTask> tasks;
  for (int i = 0; i < kGroup; ++i) data.push_back(MakeNodeTaskData(kSeed + 60 + i));
  for (const TaskData& d : data) tasks.push_back(d.MakeTask(&model));
  std::vector<const explain::ExplanationTask*> group;
  for (const auto& task : tasks) group.push_back(&task);

  explain::GnnExplainerOptions options;
  options.epochs = kEpochs;
  options.seed = kSeed + 3;
  explain::GnnExplainerMethod explainer(options);
  const std::vector<explain::Explanation> batched =
      explainer.ExplainBatch(group, explain::Objective::kFactual);
  ASSERT_EQ(batched.size(), static_cast<size_t>(kGroup));

  const std::vector<obs::AuditRecord> records = obs::AuditSink::Global().TakeRecords();
  ASSERT_EQ(records.size(), static_cast<size_t>(kGroup));
  for (int i = 0; i < kGroup; ++i) {
    EXPECT_EQ(records[i].method, "GNNExplainer");
    EXPECT_EQ(records[i].instance_in_group, i);
    EXPECT_EQ(records[i].num_edges, data[i].graph.num_edges()) << "instance " << i;
    ASSERT_EQ(records[i].loss_curve.size(), static_cast<size_t>(kEpochs)) << "instance " << i;
    EXPECT_TRUE(AllFinite(records[i].loss_curve)) << "instance " << i;
    EXPECT_TRUE(AllFinite(records[i].mask_entropy)) << "instance " << i;
  }
}

TEST_F(AuditTest, RecordJsonRoundTrips) {
  obs::AuditRecord record;
  record.record_id = 7;
  record.method = "Revelio";
  record.objective = "factual";
  record.megabatched = true;
  record.group_size = 4;
  record.instance_in_group = 2;
  record.num_nodes = 9;
  record.num_edges = 22;
  record.target_node = 3;
  record.target_class = 1;
  record.loss_curve = {0.9, 0.5, 0.25};
  record.mask_entropy = {0.69, 0.5, 0.31};
  record.top_scores = {2.5, 1.0, -0.5};
  record.pool_hits = 100;
  record.pool_misses = 2;
  record.wall_seconds = 0.125;
  record.phase_seconds = {{"optimize", 0.1}, {"extract", 0.025}};
  record.config = {{"epochs", "3"}, {"note", "quote \" and \n newline"}};

  const std::string json = AuditRecordToJson(record);
  EXPECT_EQ(json.find('\n'), std::string::npos) << "JSONL records must be single-line";
  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(json, &root, &error)) << error;
  EXPECT_EQ(root.Find("record_id")->number_value, 7.0);
  EXPECT_EQ(root.Find("method")->string_value, "Revelio");
  EXPECT_TRUE(root.Find("megabatched")->bool_value);
  EXPECT_EQ(root.Find("group_size")->number_value, 4.0);
  EXPECT_EQ(root.Find("instance_in_group")->number_value, 2.0);
  const obs::JsonValue* task = root.Find("task");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->Find("num_nodes")->number_value, 9.0);
  EXPECT_EQ(task->Find("num_edges")->number_value, 22.0);
  EXPECT_EQ(task->Find("target_node")->number_value, 3.0);
  ASSERT_EQ(root.Find("loss_curve")->array_items.size(), 3u);
  EXPECT_EQ(root.Find("loss_curve")->array_items[2].number_value, 0.25);
  ASSERT_EQ(root.Find("mask_entropy")->array_items.size(), 3u);
  ASSERT_EQ(root.Find("top_scores")->array_items.size(), 3u);
  const obs::JsonValue* pool = root.Find("pool");
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->Find("hits")->number_value, 100.0);
  EXPECT_EQ(pool->Find("misses")->number_value, 2.0);
  const obs::JsonValue* phases = root.Find("phases");
  ASSERT_NE(phases, nullptr);
  EXPECT_EQ(phases->Find("optimize")->number_value, 0.1);
  const obs::JsonValue* config = root.Find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->Find("note")->string_value, "quote \" and \n newline");
}

TEST_F(AuditTest, ScopesDoNotNest) {
  obs::AuditSink::Global().CollectInMemory();
  {
    obs::AuditScope outer(2);
    ASSERT_TRUE(outer.active());
    obs::AuditScope::Current(0)->method = "outer";
    {
      obs::AuditScope inner(1);  // inert: the outer scope owns the slot
      EXPECT_FALSE(inner.active());
      ASSERT_NE(obs::AuditScope::Current(0), nullptr);
      EXPECT_EQ(obs::AuditScope::Current(0)->method, "outer");
    }
    // Inner destruction must not tear down the outer scope.
    ASSERT_NE(obs::AuditScope::Current(0), nullptr);
    outer.SubmitAll();
  }
  const std::vector<obs::AuditRecord> records = obs::AuditSink::Global().TakeRecords();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].method, "outer");
}

}  // namespace
}  // namespace revelio
