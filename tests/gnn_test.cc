// Tests for the GNN stack: layer-edge sets, mask semantics (Eq. 6), layer
// behavior, model forward shapes, and a training smoke test per arch.

#include <cmath>

#include <gtest/gtest.h>

#include "gnn/layer_edges.h"
#include "gnn/layers.h"
#include "gnn/model.h"
#include "gnn/trainer.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace revelio::gnn {
namespace {

using graph::Graph;
using tensor::Tensor;

Graph TriangleGraph() {
  Graph g(3);
  g.AddUndirectedEdge(0, 1);
  g.AddUndirectedEdge(1, 2);
  g.AddUndirectedEdge(0, 2);
  return g;
}

TEST(LayerEdgesTest, BaseEdgesThenSelfLoops) {
  Graph g = TriangleGraph();
  LayerEdgeSet edges = BuildLayerEdges(g);
  EXPECT_EQ(edges.num_base_edges, 6);
  EXPECT_EQ(edges.num_layer_edges(), 9);
  for (int e = 0; e < 6; ++e) EXPECT_FALSE(edges.IsSelfLoop(e));
  for (int v = 0; v < 3; ++v) {
    const int e = edges.SelfLoopOf(v);
    EXPECT_TRUE(edges.IsSelfLoop(e));
    EXPECT_EQ(edges.src[e], v);
    EXPECT_EQ(edges.dst[e], v);
  }
  // Every node of the triangle has 2 in-edges + 1 self-loop.
  for (int v = 0; v < 3; ++v) EXPECT_EQ(edges.in_layer_edges[v].size(), 3u);
}

TEST(LayerEdgesTest, GcnCoefficientsSymmetricNorm) {
  Graph g(2);
  g.AddUndirectedEdge(0, 1);
  LayerEdgeSet edges = BuildLayerEdges(g);
  const auto coefficients = GcnCoefficients(g, edges);
  // d = in_degree + 1 = 2 for both nodes: edge coeff = 1/2, self = 1/2.
  for (float c : coefficients) EXPECT_NEAR(c, 0.5f, 1e-6);
}

class LayerMaskSemantics : public ::testing::TestWithParam<GnnArch> {
 protected:
  std::unique_ptr<GnnLayer> MakeLayer(int in_dim, int out_dim) {
    util::Rng rng(7);
    switch (GetParam()) {
      case GnnArch::kGcn:
        return std::make_unique<GcnLayer>(in_dim, out_dim, &rng);
      case GnnArch::kGin:
        return std::make_unique<GinLayer>(in_dim, out_dim, &rng);
      case GnnArch::kGat:
        return std::make_unique<GatLayer>(in_dim, out_dim, 2, /*concat=*/true, &rng);
    }
    return nullptr;
  }
};

TEST_P(LayerMaskSemantics, AllOnesMaskMatchesUnmasked) {
  Graph g = TriangleGraph();
  LayerEdgeSet edges = BuildLayerEdges(g);
  util::Rng rng(3);
  Tensor x = Tensor::Randn(3, 4, &rng);
  auto layer = MakeLayer(4, 6);
  Tensor unmasked = layer->Forward(g, edges, x, Tensor());
  Tensor masked = layer->Forward(g, edges, x, Tensor::Ones(edges.num_layer_edges(), 1));
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 6; ++c) EXPECT_NEAR(masked.At(r, c), unmasked.At(r, c), 1e-5);
  }
}

TEST_P(LayerMaskSemantics, ZeroMaskKillsEdgeContribution) {
  if (GetParam() == GnnArch::kGat) {
    // For GAT, masking an edge is NOT equivalent to zeroing its source
    // features: Eq. 6 applies the mask after attention, so the masked edge
    // still participates in the softmax denominator. Covered by
    // GatMaskZeroesMessageNotAttention below.
    GTEST_SKIP();
  }
  // Graph: 0 -> 2 and 1 -> 2. For GCN/GIN, masking both in-edges of node 2
  // must equal zeroing the source features (messages are linear in h_src).
  Graph g(3);
  const int e02 = g.AddEdge(0, 2);
  const int e12 = g.AddEdge(1, 2);
  LayerEdgeSet edges = BuildLayerEdges(g);
  util::Rng rng(5);
  Tensor x = Tensor::Randn(3, 4, &rng);
  auto layer = MakeLayer(4, 4);

  std::vector<float> mask_values(edges.num_layer_edges(), 1.0f);
  mask_values[e02] = 0.0f;
  mask_values[e12] = 0.0f;
  Tensor out_masked =
      layer->Forward(g, edges, x, Tensor::FromVector(mask_values));

  Tensor x_zeroed = x.Detach();
  for (int f = 0; f < 4; ++f) {
    x_zeroed.SetAt(0, f, 0.0f);
    x_zeroed.SetAt(1, f, 0.0f);
  }
  Tensor out_isolated =
      layer->Forward(g, edges, x_zeroed, Tensor::Ones(edges.num_layer_edges(), 1));
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(out_masked.At(2, c), out_isolated.At(2, c), 1e-4)
        << "masking an edge must equal removing its message";
  }
}

INSTANTIATE_TEST_SUITE_P(Archs, LayerMaskSemantics,
                         ::testing::Values(GnnArch::kGcn, GnnArch::kGin, GnnArch::kGat));

TEST(GnnLayerTest, GatMaskZeroesMessageNotAttention) {
  // Masking every in-layer-edge of a node leaves only the bias: compare
  // against an isolated zero-feature node, whose attended message is zero.
  Graph g(3);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  LayerEdgeSet edges = BuildLayerEdges(g);
  util::Rng rng(5);
  GatLayer layer(4, 4, 2, /*concat=*/true, &rng);
  Tensor x = Tensor::Randn(3, 4, &rng);

  std::vector<float> mask_values(edges.num_layer_edges(), 1.0f);
  mask_values[0] = 0.0f;                  // 0 -> 2
  mask_values[1] = 0.0f;                  // 1 -> 2
  mask_values[edges.SelfLoopOf(2)] = 0.0f;
  Tensor out_masked = layer.Forward(g, edges, x, Tensor::FromVector(mask_values));

  Graph isolated(1);
  LayerEdgeSet iso_edges = BuildLayerEdges(isolated);
  Tensor out_bias = layer.Forward(isolated, iso_edges, Tensor::Zeros(1, 4), Tensor());
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(out_masked.At(2, c), out_bias.At(0, c), 1e-4);
  }
}

TEST(GnnLayerTest, GcnSelfLoopOnlyNodeKeepsOwnSignal) {
  Graph g(2);
  g.AddEdge(0, 1);  // node 0 has no in-edges
  LayerEdgeSet edges = BuildLayerEdges(g);
  util::Rng rng(11);
  GcnLayer layer(3, 3, &rng);
  Tensor x = Tensor::Randn(2, 3, &rng);
  Tensor out = layer.Forward(g, edges, x, Tensor());
  // Node 0's output = self-loop coeff * xW + b; it must not be all-bias.
  Tensor zero_x = Tensor::Zeros(2, 3);
  Tensor out_zero = layer.Forward(g, edges, zero_x, Tensor());
  bool differs = false;
  for (int c = 0; c < 3; ++c) {
    if (std::fabs(out.At(0, c) - out_zero.At(0, c)) > 1e-6) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(GnnLayerTest, GatAttentionSumsToOnePerNode) {
  // Indirect check: with identical inputs everywhere, a GAT layer output is
  // invariant to in-degree (attention normalizes), unlike a sum aggregator.
  util::Rng rng(13);
  GatLayer layer(4, 4, 2, /*concat=*/true, &rng);
  Tensor x = Tensor::Ones(4, 4);

  Graph star(4);  // node 0 receives from 1, 2, 3
  star.AddEdge(1, 0);
  star.AddEdge(2, 0);
  star.AddEdge(3, 0);
  LayerEdgeSet star_edges = BuildLayerEdges(star);
  Tensor out_star = layer.Forward(star, star_edges, x, Tensor());

  Graph pair(4);  // node 0 receives from node 1 only
  pair.AddEdge(1, 0);
  LayerEdgeSet pair_edges = BuildLayerEdges(pair);
  Tensor out_pair = layer.Forward(pair, pair_edges, x, Tensor());

  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(out_star.At(0, c), out_pair.At(0, c), 1e-4);
  }
}

TEST(GnnModelTest, NodeTaskShapesAndEmbeddings) {
  GnnConfig config;
  config.arch = GnnArch::kGcn;
  config.task = TaskType::kNodeClassification;
  config.input_dim = 5;
  config.hidden_dim = 8;
  config.num_classes = 3;
  config.num_layers = 3;
  GnnModel model(config);
  Graph g = TriangleGraph();
  util::Rng rng(17);
  Tensor x = Tensor::Randn(3, 5, &rng);
  LayerEdgeSet edges = BuildLayerEdges(g);
  auto result = model.Run(g, edges, x, {});
  EXPECT_EQ(result.logits.rows(), 3);
  EXPECT_EQ(result.logits.cols(), 3);
  ASSERT_EQ(result.embeddings.size(), 4u);
  EXPECT_EQ(result.embeddings[0].cols(), 5);
  EXPECT_EQ(result.embeddings[3].cols(), 8);
}

TEST(GnnModelTest, GraphTaskPoolsToOneRowPerGraph) {
  GnnConfig config;
  config.arch = GnnArch::kGin;
  config.task = TaskType::kGraphClassification;
  config.input_dim = 4;
  config.hidden_dim = 8;
  config.num_classes = 2;
  GnnModel model(config);
  Graph g = TriangleGraph();
  util::Rng rng(19);
  Tensor x = Tensor::Randn(3, 4, &rng);
  Tensor logits = model.Logits(g, x);
  EXPECT_EQ(logits.rows(), 1);
  EXPECT_EQ(logits.cols(), 2);
}

TEST(GnnModelTest, PermutationEquivariance) {
  // Relabeling nodes permutes node logits identically (GCN).
  GnnConfig config;
  config.arch = GnnArch::kGcn;
  config.input_dim = 4;
  config.hidden_dim = 8;
  config.num_classes = 2;
  config.seed = 23;
  GnnModel model(config);

  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  util::Rng rng(29);
  Tensor x = Tensor::Randn(3, 4, &rng);
  Tensor logits = model.Logits(g, x);

  // Permutation (0,1,2) -> (2,0,1).
  const int perm[3] = {2, 0, 1};
  Graph pg(3);
  pg.AddEdge(perm[0], perm[1]);
  pg.AddEdge(perm[1], perm[2]);
  Tensor px = Tensor::Zeros(3, 4);
  for (int v = 0; v < 3; ++v) {
    for (int f = 0; f < 4; ++f) px.SetAt(perm[v], f, x.At(v, f));
  }
  Tensor plogits = model.Logits(pg, px);
  for (int v = 0; v < 3; ++v) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_NEAR(logits.At(v, c), plogits.At(perm[v], c), 1e-4);
    }
  }
}

TEST(TrainerTest, MakeSplitPartitionsIndices) {
  util::Rng rng(31);
  Split split = MakeSplit(100, 0.7, 0.15, &rng);
  EXPECT_EQ(split.train.size(), 70u);
  EXPECT_EQ(split.val.size(), 15u);
  EXPECT_EQ(split.test.size(), 15u);
  std::vector<char> seen(100, 0);
  for (int i : split.train) seen[i] += 1;
  for (int i : split.val) seen[i] += 1;
  for (int i : split.test) seen[i] += 1;
  for (char s : seen) EXPECT_EQ(s, 1) << "each index appears exactly once";
}

TEST(TrainerTest, NodeModelLearnsSeparableClasses) {
  // Two communities with distinctive features: accuracy should be high.
  util::Rng rng(37);
  Graph g(40);
  for (int i = 0; i < 20; ++i) g.AddUndirectedEdge(i, (i + 1) % 20);
  for (int i = 20; i < 40; ++i) g.AddUndirectedEdge(i, 20 + (i + 1 - 20) % 20);
  Tensor x = Tensor::Zeros(40, 4);
  std::vector<int> labels(40);
  for (int v = 0; v < 40; ++v) {
    labels[v] = v < 20 ? 0 : 1;
    x.SetAt(v, labels[v], 1.0f);
    x.SetAt(v, 2 + labels[v], static_cast<float>(rng.Uniform()));
  }
  GnnConfig config;
  config.arch = GnnArch::kGcn;
  config.input_dim = 4;
  config.hidden_dim = 8;
  config.num_classes = 2;
  GnnModel model(config);
  Split split = MakeSplit(40, 0.5, 0.25, &rng);
  TrainConfig train_config;
  train_config.epochs = 80;
  TrainMetrics metrics = TrainNodeModel(&model, g, x, labels, split, train_config);
  EXPECT_GT(metrics.test_accuracy, 0.9);
}

TEST(TrainerTest, GraphModelLearnsFeatureMajority) {
  // Label = which feature dominates; GIN mean-pool separates this easily.
  util::Rng rng(41);
  std::vector<graph::GraphInstance> instances;
  for (int i = 0; i < 60; ++i) {
    const int label = i % 2;
    graph::GraphInstance instance;
    instance.graph = Graph(5);
    for (int v = 0; v + 1 < 5; ++v) instance.graph.AddUndirectedEdge(v, v + 1);
    instance.features = Tensor::Zeros(5, 2);
    for (int v = 0; v < 5; ++v) instance.features.SetAt(v, label, 1.0f);
    instance.labels = {label};
    instances.push_back(std::move(instance));
  }
  GnnConfig config;
  config.arch = GnnArch::kGin;
  config.task = TaskType::kGraphClassification;
  config.input_dim = 2;
  config.hidden_dim = 8;
  config.num_classes = 2;
  GnnModel model(config);
  Split split = MakeSplit(60, 0.6, 0.2, &rng);
  TrainConfig train_config;
  train_config.epochs = 60;
  TrainMetrics metrics = TrainGraphModel(&model, instances, split, train_config);
  EXPECT_GT(metrics.test_accuracy, 0.9);
}

}  // namespace
}  // namespace revelio::gnn
