// Property tests: every differentiable op is validated against central
// finite differences over randomized inputs (TEST_P sweeps over seeds).

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "test_util.h"

namespace revelio::tensor {
namespace {

using revelio::testing::CheckGradient;

class GradientSweep : public ::testing::TestWithParam<uint64_t> {
 protected:
  util::Rng rng_{GetParam()};

  Tensor RandomInput(int rows, int cols, float scale = 1.0f) {
    Tensor t = Tensor::Randn(rows, cols, &rng_);
    for (auto& v : *t.mutable_values()) v *= scale;
    return t.WithRequiresGrad();
  }
};

TEST_P(GradientSweep, Add) {
  Tensor a = RandomInput(3, 4);
  Tensor b = Tensor::Randn(3, 4, &rng_);
  CheckGradient(a, [&](const Tensor& x) { return Sum(Add(x, b)); });
}

TEST_P(GradientSweep, SubBothSides) {
  Tensor a = RandomInput(2, 3);
  Tensor b = Tensor::Randn(2, 3, &rng_);
  CheckGradient(a, [&](const Tensor& x) { return Sum(Sub(x, b)); });
  Tensor c = RandomInput(2, 3);
  CheckGradient(c, [&](const Tensor& x) { return Sum(Sub(b, x)); });
}

TEST_P(GradientSweep, Mul) {
  Tensor a = RandomInput(3, 3);
  Tensor b = Tensor::Randn(3, 3, &rng_);
  CheckGradient(a, [&](const Tensor& x) { return Sum(Mul(x, b)); });
}

TEST_P(GradientSweep, MulSharedOperand) {
  // x * x exercises gradient accumulation through both parent slots.
  Tensor a = RandomInput(2, 2);
  CheckGradient(a, [&](const Tensor& x) { return Sum(Mul(x, x)); });
}

TEST_P(GradientSweep, AddRowBroadcast) {
  Tensor row = RandomInput(1, 4);
  Tensor m = Tensor::Randn(3, 4, &rng_);
  CheckGradient(row, [&](const Tensor& x) { return Sum(AddRowBroadcast(m, x)); });
}

TEST_P(GradientSweep, ScalarOps) {
  Tensor a = RandomInput(2, 3);
  CheckGradient(a, [&](const Tensor& x) { return Sum(AddScalar(MulScalar(x, 2.5f), -1.0f)); });
}

TEST_P(GradientSweep, ScaleByScalarTensorBothInputs) {
  Tensor a = RandomInput(2, 3);
  Tensor s = Tensor::Full(1, 1, 0.7f);
  CheckGradient(a, [&](const Tensor& x) { return Sum(ScaleByScalarTensor(x, s)); });
  Tensor s2 = RandomInput(1, 1);
  Tensor m = Tensor::Randn(2, 3, &rng_);
  CheckGradient(s2, [&](const Tensor& x) { return Sum(ScaleByScalarTensor(m, x)); });
}

TEST_P(GradientSweep, Activations) {
  // Shift away from ReLU/LeakyReLU kinks to keep finite differences valid.
  Tensor a = RandomInput(2, 4);
  for (auto& v : *a.mutable_values()) {
    if (std::fabs(v) < 0.1f) v = v < 0 ? v - 0.2f : v + 0.2f;
  }
  CheckGradient(a, [&](const Tensor& x) { return Sum(Relu(x)); });
  CheckGradient(a, [&](const Tensor& x) { return Sum(LeakyRelu(x, 0.2f)); });
  CheckGradient(a, [&](const Tensor& x) { return Sum(Tanh(x)); });
  CheckGradient(a, [&](const Tensor& x) { return Sum(Sigmoid(x)); });
  CheckGradient(a, [&](const Tensor& x) { return Sum(Softplus(x)); });
}

TEST_P(GradientSweep, ExpAndLog) {
  Tensor a = RandomInput(2, 3, 0.5f);
  CheckGradient(a, [&](const Tensor& x) { return Sum(Exp(x)); });
  Tensor positive = RandomInput(2, 3, 0.3f);
  for (auto& v : *positive.mutable_values()) v = std::fabs(v) + 0.5f;
  CheckGradient(positive, [&](const Tensor& x) { return Sum(Log(x)); });
}

TEST_P(GradientSweep, MatMulBothSides) {
  Tensor a = RandomInput(3, 4, 0.5f);
  Tensor b = Tensor::Randn(4, 2, &rng_);
  CheckGradient(a, [&](const Tensor& x) { return Sum(MatMul(x, b)); });
  Tensor c = RandomInput(4, 2, 0.5f);
  Tensor m = Tensor::Randn(3, 4, &rng_);
  CheckGradient(c, [&](const Tensor& x) { return Sum(MatMul(m, x)); });
}

TEST_P(GradientSweep, MeanChain) {
  Tensor a = RandomInput(3, 3);
  CheckGradient(a, [&](const Tensor& x) { return Mean(Mul(x, x)); });
}

TEST_P(GradientSweep, RowSoftmax) {
  Tensor a = RandomInput(2, 4, 0.8f);
  // Weighted sum keeps per-entry gradients informative.
  Tensor weights = Tensor::Randn(2, 4, &rng_);
  CheckGradient(a, [&](const Tensor& x) { return Sum(Mul(RowSoftmax(x), weights)); });
}

TEST_P(GradientSweep, RowLogSoftmax) {
  Tensor a = RandomInput(2, 4, 0.8f);
  Tensor weights = Tensor::Randn(2, 4, &rng_);
  CheckGradient(a, [&](const Tensor& x) { return Sum(Mul(RowLogSoftmax(x), weights)); });
}

TEST_P(GradientSweep, GatherRowsWithRepeats) {
  Tensor a = RandomInput(4, 3);
  const std::vector<int> indices = {1, 3, 1, 0, 1};
  Tensor weights = Tensor::Randn(5, 3, &rng_);
  CheckGradient(a, [&](const Tensor& x) { return Sum(Mul(GatherRows(x, indices), weights)); });
}

TEST_P(GradientSweep, ScatterAddRows) {
  Tensor a = RandomInput(5, 2);
  const std::vector<int> indices = {0, 2, 2, 1, 0};
  Tensor weights = Tensor::Randn(3, 2, &rng_);
  CheckGradient(
      a, [&](const Tensor& x) { return Sum(Mul(ScatterAddRows(x, indices, 3), weights)); });
}

TEST_P(GradientSweep, RowScaleBothInputs) {
  Tensor a = RandomInput(3, 4);
  Tensor s = Tensor::Randn(3, 1, &rng_);
  CheckGradient(a, [&](const Tensor& x) { return Sum(RowScale(x, s)); });
  Tensor s2 = RandomInput(3, 1);
  Tensor m = Tensor::Randn(3, 4, &rng_);
  CheckGradient(s2, [&](const Tensor& x) { return Sum(RowScale(m, x)); });
}

TEST_P(GradientSweep, ConcatColsBothInputs) {
  Tensor a = RandomInput(2, 3);
  Tensor b = Tensor::Randn(2, 2, &rng_);
  Tensor weights = Tensor::Randn(2, 5, &rng_);
  CheckGradient(a, [&](const Tensor& x) { return Sum(Mul(ConcatCols(x, b), weights)); });
  Tensor c = RandomInput(2, 3);
  CheckGradient(c, [&](const Tensor& x) { return Sum(Mul(ConcatCols(b, x), weights)); });
}

TEST_P(GradientSweep, SegmentSoftmax) {
  Tensor a = RandomInput(6, 1, 0.8f);
  const std::vector<int> segments = {0, 0, 1, 1, 1, 2};
  Tensor weights = Tensor::Randn(6, 1, &rng_);
  CheckGradient(a, [&](const Tensor& x) {
    return Sum(Mul(SegmentSoftmax(x, segments, 3), weights));
  });
}

TEST_P(GradientSweep, SegmentMaxRows) {
  Tensor a = RandomInput(5, 2);
  // Separate entries so the argmax is stable under finite-difference steps.
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 2; ++c) a.SetAt(r, c, a.At(r, c) + 0.5f * r);
  }
  const std::vector<int> segments = {0, 1, 1, 0, 2};
  Tensor weights = Tensor::Randn(3, 2, &rng_);
  CheckGradient(a, [&](const Tensor& x) {
    return Sum(Mul(SegmentMaxRows(x, segments, 3), weights));
  });
}

TEST_P(GradientSweep, SegmentMeanRows) {
  Tensor a = RandomInput(5, 2);
  const std::vector<int> segments = {0, 1, 1, 0, 2};
  Tensor weights = Tensor::Randn(3, 2, &rng_);
  CheckGradient(a, [&](const Tensor& x) {
    return Sum(Mul(SegmentMeanRows(x, segments, 3), weights));
  });
}

TEST_P(GradientSweep, SelectAndNllLoss) {
  Tensor a = RandomInput(3, 3);
  CheckGradient(a, [&](const Tensor& x) { return Select(x, 1, 2); });
  Tensor logits = RandomInput(3, 4, 0.8f);
  const std::vector<int> targets = {1, 0, 3};
  CheckGradient(logits,
                [&](const Tensor& x) { return NllLoss(RowLogSoftmax(x), targets); });
}

TEST_P(GradientSweep, DeepCompositeGraph) {
  // A miniature GNN-shaped computation: gather -> scale -> scatter -> matmul
  // -> softmax -> select. Exercises the full backward pipeline at once.
  Tensor x = RandomInput(4, 3, 0.6f);
  Tensor w = Tensor::Randn(3, 2, &rng_);
  const std::vector<int> src = {0, 1, 2, 3, 1};
  const std::vector<int> dst = {1, 2, 3, 0, 0};
  Tensor scale = Tensor::FromVector({0.5f, 1.0f, 0.8f, 0.2f, 0.9f});
  CheckGradient(x, [&](const Tensor& input) {
    Tensor messages = RowScale(GatherRows(input, src), scale);
    Tensor aggregated = ScatterAddRows(messages, dst, 4);
    Tensor logits = MatMul(Tanh(aggregated), w);
    return Select(RowSoftmax(logits), 0, 1);
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradientSweep, ::testing::Values(1u, 2u, 3u, 5u, 8u));

TEST(AutogradTest, BackwardAccumulatesAcrossCalls) {
  Tensor a = Tensor::Full(1, 1, 2.0f).WithRequiresGrad();
  Tensor loss = Mul(a, a);
  loss.Backward();
  EXPECT_NEAR(a.GradAt(0, 0), 4.0f, 1e-5);
  Tensor loss2 = Mul(a, a);
  loss2.Backward();
  EXPECT_NEAR(a.GradAt(0, 0), 8.0f, 1e-5) << "gradients accumulate until ZeroGrad";
  a.ZeroGrad();
  EXPECT_EQ(a.GradAt(0, 0), 0.0f);
}

TEST(AutogradTest, NoGradThroughDetach) {
  Tensor a = Tensor::Full(2, 2, 1.5f).WithRequiresGrad();
  Tensor b = Tensor::FromNode(a.node()).Detach();
  EXPECT_FALSE(b.requires_grad());
  Tensor c = Tensor::Full(2, 2, 1.0f).WithRequiresGrad();
  Tensor loss = Sum(Mul(b, c));
  loss.Backward();
  EXPECT_EQ(a.GradAt(0, 0), 0.0f);
  EXPECT_NEAR(c.GradAt(0, 0), 1.5f, 1e-6);
}

TEST(AutogradTest, DiamondGraphGradient) {
  // loss = sum(x*x + x) — x reached via two paths.
  Tensor x = Tensor::Full(1, 1, 3.0f).WithRequiresGrad();
  Tensor loss = Add(Mul(x, x), x);
  loss.Backward();
  EXPECT_NEAR(x.GradAt(0, 0), 7.0f, 1e-5);
}

}  // namespace
}  // namespace revelio::tensor
