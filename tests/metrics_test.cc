// Tests for evaluation metrics: edge ranking, Fidelity-/+ protocol, ROC-AUC.

#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "gnn/trainer.h"
#include "nn/loss.h"

namespace revelio::eval {
namespace {

TEST(RankEdgesTest, DescendingStable) {
  const auto order = RankEdges({0.2, 0.9, 0.9, 0.1});
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1);  // stable: first of the tied pair
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 0);
  EXPECT_EQ(order[3], 3);
}

TEST(RocAucTest, PerfectInvertedAndUninformative) {
  const std::vector<char> labels = {1, 1, 0, 0};
  EXPECT_NEAR(RocAuc({0.9, 0.8, 0.2, 0.1}, labels), 1.0, 1e-9);
  EXPECT_NEAR(RocAuc({0.1, 0.2, 0.8, 0.9}, labels), 0.0, 1e-9);
  EXPECT_NEAR(RocAuc({0.5, 0.5, 0.5, 0.5}, labels), 0.5, 1e-9) << "all ties -> midrank 0.5";
  EXPECT_NEAR(RocAuc({0.9, 0.1, 0.5, 0.5}, {1, 1, 1, 1}), 0.5, 1e-9) << "single class";
}

TEST(RocAucTest, PartialOrdering) {
  // positives {0.9, 0.4}, negatives {0.6, 0.1}: pairs won = 3 of 4.
  EXPECT_NEAR(RocAuc({0.9, 0.4, 0.6, 0.1}, {1, 1, 0, 0}), 0.75, 1e-9);
}

TEST(RocAucTest, TiesGetHalfCredit) {
  // positive 0.5 ties negative 0.5: U = 0.5 of 1.
  EXPECT_NEAR(RocAuc({0.5, 0.5}, {1, 0}), 0.5, 1e-9);
}

class FidelityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Small trained model on a two-community graph so probabilities react to
    // edge removal in a meaningful way.
    graph_ = graph::Graph(10);
    for (int i = 0; i < 5; ++i) graph_.AddUndirectedEdge(i, (i + 1) % 5);
    for (int i = 5; i < 10; ++i) graph_.AddUndirectedEdge(i, 5 + (i + 1 - 5) % 5);
    graph_.AddUndirectedEdge(0, 5);  // weak bridge
    // Only even nodes carry their class feature; odd nodes (including the
    // explanation target) are feature-blank, so the model must rely on
    // message passing — edge removal then changes predictions.
    features_ = tensor::Tensor::Zeros(10, 2);
    for (int v = 0; v < 10; ++v) {
      labels_.push_back(v < 5 ? 0 : 1);
      if (v % 2 == 0) features_.SetAt(v, labels_[v], 1.0f);
    }
    gnn::GnnConfig config;
    config.arch = gnn::GnnArch::kGcn;
    config.input_dim = 2;
    config.hidden_dim = 8;
    config.num_classes = 2;
    model_ = std::make_unique<gnn::GnnModel>(config);
    util::Rng rng(3);
    gnn::Split split = gnn::MakeSplit(10, 0.8, 0.1, &rng);
    gnn::TrainConfig train_config;
    train_config.epochs = 60;
    gnn::TrainNodeModel(model_.get(), graph_, features_, labels_, split, train_config);

    task_.model = model_.get();
    task_.graph = &graph_;
    task_.features = features_;
    task_.target_node = 3;  // feature-blank: prediction driven by neighbors
    task_.target_class = explain::PredictedClass(task_);
  }

  graph::Graph graph_;
  tensor::Tensor features_;
  std::vector<int> labels_;
  std::unique_ptr<gnn::GnnModel> model_;
  explain::ExplanationTask task_;
};

TEST_F(FidelityTest, RemovingNothingGivesZeroProbabilityChange) {
  const double p = explain::PredictedProbability(task_);
  EXPECT_NEAR(ProbabilityWithoutEdges(task_, {}), p, 1e-6);
}

TEST_F(FidelityTest, FidelityMinusAtZeroSparsityIsZero) {
  std::vector<double> scores(graph_.num_edges(), 0.5);
  EXPECT_NEAR(FidelityMinus(task_, scores, 0.0), 0.0, 1e-6)
      << "sparsity 0 keeps every edge";
}

TEST_F(FidelityTest, FidelityBoundsHold) {
  // Theoretical range (1/C - 1, 1) for any score vector and sparsity.
  util::Rng rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> scores(graph_.num_edges());
    for (auto& s : scores) s = rng.Uniform();
    for (double sparsity : {0.3, 0.5, 0.7, 0.9}) {
      const double fm = FidelityMinus(task_, scores, sparsity);
      const double fp = FidelityPlus(task_, scores, sparsity);
      EXPECT_GT(fm, 1.0 / 2 - 1);
      EXPECT_LT(fm, 1.0);
      EXPECT_GT(fp, 1.0 / 2 - 1);
      EXPECT_LT(fp, 1.0);
    }
  }
}

TEST_F(FidelityTest, OracleScoresBeatAntiOracleOnFidelityPlus) {
  // Scores that rank same-community edges first should, when removed (the
  // Fidelity+ protocol), hurt the prediction more than removing the
  // cross-community bridge and far-community edges first.
  std::vector<double> oracle(graph_.num_edges());
  std::vector<double> anti(graph_.num_edges());
  for (int e = 0; e < graph_.num_edges(); ++e) {
    const auto& edge = graph_.edge(e);
    const bool near_target = edge.src < 5 && edge.dst < 5;
    oracle[e] = near_target ? 1.0 : 0.0;
    anti[e] = near_target ? 0.0 : 1.0;
  }
  const double fp_oracle = FidelityPlus(task_, oracle, 0.5);
  const double fp_anti = FidelityPlus(task_, anti, 0.5);
  EXPECT_GT(fp_oracle, fp_anti);
}

}  // namespace
}  // namespace revelio::eval
