// Standalone validator for the recorded-execution-plan sweep, used as a
// ctest fixture after `bench_table5_runtime --plan-sweep`:
//   plan_bench_check <BENCH_plan.json>
// Exit 0 when the file carries the shared BENCH_*.json envelope and, for
// every sweep point, the replayed explanations were bitwise-equal to the
// eager loop and replays performed ZERO pool acquisitions (the static arena
// claim: after epoch 0 records, steady state allocates nothing). The plan
// path must beat eager by >= 1.15x at the largest epoch count, where the
// record cost is fully amortized — the committed sweep measures well above
// that, so the gate has headroom against scheduler noise without ever
// accepting a regression to parity. Exit 1 on validation failure, 2 on
// usage/IO errors.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

using revelio::obs::JsonValue;

const JsonValue* RequireNumber(const JsonValue& object, const char* key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_number()) {
    std::fprintf(stderr, "plan_bench_check: missing numeric \"%s\"\n", key);
    return nullptr;
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: plan_bench_check <BENCH_plan.json>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "plan_bench_check: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  JsonValue root;
  std::string error;
  if (!revelio::obs::ParseJson(buffer.str(), &root, &error)) {
    std::fprintf(stderr, "plan_bench_check: %s is malformed JSON: %s\n", argv[1],
                 error.c_str());
    return 1;
  }
  if (!root.is_object()) {
    std::fprintf(stderr, "plan_bench_check: top level is not an object\n");
    return 1;
  }

  // Shared envelope (bench/bench_common.h WriteBenchJson).
  const JsonValue* schema = root.Find("schema_version");
  if (schema == nullptr || !schema->is_number() || schema->number_value != 1) {
    std::fprintf(stderr, "plan_bench_check: missing schema_version 1\n");
    return 1;
  }
  const JsonValue* bench = root.Find("bench");
  if (bench == nullptr || !bench->is_string() || bench->string_value != "plan_sweep") {
    std::fprintf(stderr, "plan_bench_check: bench name is not plan_sweep\n");
    return 1;
  }
  const JsonValue* data = root.Find("data");
  if (data == nullptr || !data->is_object()) {
    std::fprintf(stderr, "plan_bench_check: missing data object\n");
    return 1;
  }
  const JsonValue* points = data->Find("points");
  if (points == nullptr || !points->is_array() || points->array_items.empty()) {
    std::fprintf(stderr, "plan_bench_check: missing non-empty data.points array\n");
    return 1;
  }

  double largest_epochs = -1.0;
  double largest_speedup = 0.0;
  for (size_t i = 0; i < points->array_items.size(); ++i) {
    const JsonValue& point = points->array_items[i];
    if (!point.is_object()) {
      std::fprintf(stderr, "plan_bench_check: point %zu is not an object\n", i);
      return 1;
    }
    const JsonValue* epochs = RequireNumber(point, "epochs");
    const JsonValue* eager_seconds = RequireNumber(point, "eager_seconds");
    const JsonValue* plan_seconds = RequireNumber(point, "plan_seconds");
    const JsonValue* speedup = RequireNumber(point, "plan_speedup");
    const JsonValue* replays = RequireNumber(point, "replays");
    const JsonValue* acquires = RequireNumber(point, "replay_pool_acquires");
    if (epochs == nullptr || eager_seconds == nullptr || plan_seconds == nullptr ||
        speedup == nullptr || replays == nullptr || acquires == nullptr) {
      return 1;
    }
    if (eager_seconds->number_value <= 0.0 || plan_seconds->number_value <= 0.0) {
      std::fprintf(stderr, "plan_bench_check: point %zu has non-positive seconds\n", i);
      return 1;
    }
    const JsonValue* bitwise = point.Find("bitwise_equal");
    if (bitwise == nullptr || bitwise->type != JsonValue::Type::kBool) {
      std::fprintf(stderr, "plan_bench_check: point %zu lacks bool bitwise_equal\n", i);
      return 1;
    }
    if (!bitwise->bool_value) {
      std::fprintf(stderr,
                   "plan_bench_check: point %zu (epochs=%.0f): replayed explanations "
                   "diverged from the eager loop\n",
                   i, epochs->number_value);
      return 1;
    }
    if (replays->number_value <= 0.0) {
      std::fprintf(stderr,
                   "plan_bench_check: point %zu (epochs=%.0f): plan path never "
                   "replayed (vacuous sweep)\n",
                   i, epochs->number_value);
      return 1;
    }
    if (acquires->number_value != 0.0) {
      std::fprintf(stderr,
                   "plan_bench_check: point %zu (epochs=%.0f): %.0f pool acquisitions "
                   "during replay; the static arena must make steady state "
                   "allocation-free\n",
                   i, epochs->number_value, acquires->number_value);
      return 1;
    }
    if (epochs->number_value > largest_epochs) {
      largest_epochs = epochs->number_value;
      largest_speedup = speedup->number_value;
    }
  }

  if (largest_speedup < 1.15) {
    std::fprintf(stderr,
                 "plan_bench_check: plan replay lost its margin over eager at the "
                 "largest sweep size (epochs=%.0f, speedup=%.3fx < 1.15x)\n",
                 largest_epochs, largest_speedup);
    return 1;
  }
  std::printf(
      "plan_bench_check: %s ok (%zu points, largest epochs=%.0f speedup=%.2fx, "
      "zero replay pool acquisitions)\n",
      argv[1], points->array_items.size(), largest_epochs, largest_speedup);
  return 0;
}
